//! Protocol-v2 integration suite: the `HELLO` codec handshake, text/binary
//! codec equivalence (bit-identical answers for every registered
//! algorithm, buffered and streamed), streamed batch delivery and its
//! `ERR busy` backpressure gate, and the `LOAD` admin verb's allowlist.
//!
//! Everything here runs against a real TCP server; the v1 behaviors these
//! features must not disturb are pinned separately (and unchanged) in
//! `protocol_regress.rs`.

use std::path::PathBuf;
use std::sync::Arc;

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

use fairhms_core::registry::ALGORITHM_NAMES;
use fairhms_data::{gen, Dataset};
use fairhms_service::codec::{BinaryCodec, Codec, CodecKind, TextCodec};
use fairhms_service::protocol::{
    decode_response_line, encode_response_line, parse_response, Response, WireAnswer,
};
use fairhms_service::{
    Catalog, Query, QueryEngine, ServeOptions, Server, ServerConfig, ServiceError, WireClient,
};

fn generated(name: &str, n: usize, d: usize, c: usize, seed: u64) -> Dataset {
    let mut rng = StdRng::seed_from_u64(seed);
    let points = gen::anti_correlated(n, d, &mut rng);
    let groups = gen::groups_by_sum(&points, d, c);
    Dataset::new(
        name,
        d,
        points,
        groups,
        (0..c).map(|g| format!("g{g}")).collect(),
    )
    .unwrap()
}

/// A 2-dimensional dataset so even `intcov` (exact, 2D-only) runs.
fn spawn_server(opts: ServeOptions) -> Server {
    let catalog = Arc::new(Catalog::new());
    catalog
        .insert_dataset(generated("demo", 120, 2, 3, 11))
        .unwrap();
    let engine = Arc::new(QueryEngine::new(catalog, 4096));
    Server::spawn_with(
        engine,
        ServerConfig {
            addr: "127.0.0.1:0".to_string(),
            workers: 4,
        },
        opts,
    )
    .unwrap()
}

fn mixed_queries() -> Vec<Query> {
    let mut qs = Vec::new();
    for k in [2usize, 3, 4] {
        for alg in ["intcov", "bigreedy", "f-greedy", "streaming"] {
            let mut q = Query::new("demo", k);
            q.alg = alg.to_string();
            q.alpha = 0.25;
            qs.push(q);
        }
    }
    // a duplicate (guaranteed cache interaction) and a failing slot
    qs.push(qs[0].clone());
    qs.push(Query::new("absent", 3));
    qs
}

fn assert_same_payload(a: &WireAnswer, b: &WireAnswer, ctx: &str) {
    assert_eq!(a.indices, b.indices, "{ctx}: indices diverged");
    assert_eq!(
        a.mhr.map(f64::to_bits),
        b.mhr.map(f64::to_bits),
        "{ctx}: mhr bits diverged"
    );
    assert_eq!(a.alg, b.alg, "{ctx}: algorithm diverged");
    assert_eq!(a.violations, b.violations, "{ctx}: violations diverged");
}

// ---------------------------------------------------------------------
// Handshake + interop
// ---------------------------------------------------------------------

#[test]
fn hello_negotiates_binary_and_v1_clients_interop_unchanged() {
    let server = spawn_server(ServeOptions::default());
    let addr = server.addr();

    // A v2 binary client and a plain v1 text client (no HELLO) share the
    // server concurrently.
    let mut binary = WireClient::negotiate(addr, CodecKind::Binary).unwrap();
    assert_eq!(binary.codec_kind(), CodecKind::Binary);
    let mut v1 = WireClient::connect(addr).unwrap();
    assert_eq!(v1.codec_kind(), CodecKind::Text);

    // Same stateless verbs answer identically (typed) on both.
    for verb in ["PING", "LIST", "ALGS", "INFO", "SHARDS"] {
        binary.send_line(verb).unwrap();
        v1.send_line(verb).unwrap();
        let b = binary.recv().unwrap();
        let t = v1.recv().unwrap();
        assert_eq!(b, t, "verb {verb} diverged across codecs");
    }

    // The same query answers bit-identically across codecs (cached flag
    // and micros legitimately differ between executions).
    let mut q = Query::new("demo", 3);
    q.alg = "intcov".into();
    let from_binary = binary.query(&q).unwrap();
    let from_v1 = v1.query(&q).unwrap();
    assert_same_payload(&from_binary, &from_v1, "binary vs v1 text");

    // An in-protocol error on the binary channel is a typed frame and
    // does not desynchronize the connection.
    binary.send_line("FROB").unwrap();
    match binary.recv().unwrap() {
        Response::Error { seq: None, message } => {
            assert!(message.contains("unknown verb"), "{message}")
        }
        other => panic!("expected error frame, got {other:?}"),
    }
    binary.send_line("PING").unwrap();
    assert_eq!(binary.recv().unwrap(), Response::Pong);

    // Re-negotiating back to text mid-connection also works (the ack is
    // sent in the previous codec).
    binary.send_line("HELLO version=2 codec=text").unwrap();
    match binary.recv().unwrap() {
        Response::Hello {
            version: 2,
            codec: CodecKind::Text,
        } => {}
        other => panic!("unexpected ack {other:?}"),
    }
    // (This client object still decodes binary; drop it rather than track
    // the swap — the server side is what the assertion above pinned.)
    drop(binary);

    // An unsupported HELLO is an ERR on a connection that stays usable.
    v1.send_line("HELLO version=3 codec=binary").unwrap();
    match v1.recv().unwrap() {
        Response::Error { message, .. } => {
            assert!(
                message.contains("unsupported protocol version"),
                "{message}"
            )
        }
        other => panic!("expected error, got {other:?}"),
    }
    v1.send_line("PING").unwrap();
    assert_eq!(v1.recv().unwrap(), Response::Pong);

    server.shutdown();
}

// ---------------------------------------------------------------------
// Codec equivalence
// ---------------------------------------------------------------------

/// Acceptance pin: for EVERY registered algorithm, answers served over
/// the binary codec are bit-identical (indices, violations, mhr bits) to
/// text-codec answers for the same queries — including streamed vs
/// buffered delivery (all four combinations meet in one matrix).
#[test]
fn every_algorithm_bit_identical_across_codecs_and_deliveries() {
    let server = spawn_server(ServeOptions::default());
    let addr = server.addr();

    let mut queries = Vec::new();
    for alg in ALGORITHM_NAMES {
        for (k, balanced, seed) in [(3usize, false, 42u64), (4, true, 7)] {
            let mut q = Query::new("demo", k);
            q.alg = alg.to_string();
            q.balanced = balanced;
            q.seed = seed;
            queries.push(q);
        }
    }

    // Reference: buffered batch over a v1 text connection.
    let mut text = WireClient::connect(addr).unwrap();
    let reference = text.batch(&queries, false).unwrap();
    assert!(
        reference.iter().any(|r| r.is_ok()),
        "no algorithm produced an answer"
    );

    for (kind, stream) in [
        (CodecKind::Text, true),
        (CodecKind::Binary, false),
        (CodecKind::Binary, true),
    ] {
        let mut client = match kind {
            CodecKind::Text => WireClient::connect(addr).unwrap(),
            CodecKind::Binary => WireClient::negotiate(addr, kind).unwrap(),
        };
        let got = client.batch(&queries, stream).unwrap();
        assert_eq!(got.len(), reference.len());
        for (i, (g, r)) in got.iter().zip(&reference).enumerate() {
            let ctx = format!(
                "query {i} ({} k={}) via {kind} stream={stream}",
                queries[i].alg, queries[i].k
            );
            match (g, r) {
                (Ok(g), Ok(r)) => assert_same_payload(g, r, &ctx),
                // An algorithm that rejects the instance must reject it
                // with the identical message under every codec/delivery.
                (Err(ge), Err(re)) => assert_eq!(ge, re, "{ctx}: errors diverged"),
                (g, r) => panic!("{ctx}: one path failed, the other did not: {g:?} vs {r:?}"),
            }
        }
    }
    server.shutdown();
}

fn arb_answer() -> impl Strategy<Value = WireAnswer> {
    (
        0usize..6,
        0usize..2,
        0u64..1 << 40,
        0usize..4,
        0usize..5,
        proptest::collection::vec(0usize..200_000, 0..40),
    )
        .prop_map(|(alg, cached, micros, violations, mhr_kind, indices)| {
            let alg = [
                "BiGreedy",
                "IntCov",
                "F-Greedy",
                "G-DMM",
                "Streaming",
                "RDP-Greedy",
            ][alg];
            let mhr = match mhr_kind {
                0 => None,
                1 => Some(0.1 + 0.2),         // messy trailing digits
                2 => Some(f64::MIN_POSITIVE), // subnormal-adjacent
                3 => Some(1.0 - f64::EPSILON),
                _ => Some((micros as f64) / (1u64 << 40) as f64),
            };
            let mut indices = indices;
            indices.sort_unstable();
            indices.dedup();
            WireAnswer {
                alg: alg.to_string(),
                cached: cached == 1,
                micros,
                violations,
                mhr,
                indices,
            }
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Satellite pin: every answer-shaped `Response` round-trips through
    /// BOTH codecs, the two decodes agree with each other and with the
    /// original (`mhr` compared via `to_bits`), and the `seq=None` text
    /// rendering is accepted by the legacy v1 `parse_response` decoder
    /// with an identical payload.
    #[test]
    fn codec_equivalence_round_trip(ans in arb_answer(), seq_kind in 0usize..3) {
        let seq = match seq_kind {
            0 => None,
            1 => Some(0u64),
            _ => Some(99_999),
        };
        let resp = Response::Answer { seq, answer: ans.clone() };

        // Text round trip.
        let line = encode_response_line(&resp).unwrap();
        let via_text = decode_response_line(&line).unwrap();
        prop_assert_eq!(&via_text, &resp);

        // Binary round trip (through real frames).
        let mut frame = Vec::new();
        BinaryCodec.encode_frame(&resp, &mut frame).unwrap();
        let mut cursor = std::io::Cursor::new(frame);
        let via_binary = BinaryCodec.read_frame(&mut cursor).unwrap().unwrap();
        prop_assert_eq!(&via_binary, &resp);

        // Cross-codec agreement, mhr explicitly by bits.
        let (Response::Answer { answer: t, .. }, Response::Answer { answer: b, .. }) =
            (&via_text, &via_binary)
        else {
            panic!("decoded to a non-answer variant");
        };
        prop_assert_eq!(t.mhr.map(f64::to_bits), b.mhr.map(f64::to_bits));
        prop_assert_eq!(&t.indices, &b.indices);

        // v1 compatibility: unstreamed answers decode via the legacy path.
        if seq.is_none() {
            prop_assert_eq!(parse_response(&line).unwrap(), ans);
        }
    }

    /// Error frames equivalently round-trip both codecs too (they share
    /// the streamed-batch channel with answers).
    #[test]
    fn error_frames_round_trip_both_codecs(code in 0usize..4, seq_kind in 0usize..2) {
        let e = match code {
            0 => ServiceError::UnknownDataset { name: "x".into() },
            1 => ServiceError::Protocol("unknown verb \"FROB\"".into()),
            2 => ServiceError::Busy {
                reason: "8 streamed batches in flight (limit 8)".into(),
                retry_after_ms: 24,
            },
            _ => ServiceError::Dataset("dataset has no rows".into()),
        };
        let seq = (seq_kind == 1).then_some(3u64);
        let resp = Response::error_at(seq, &e);

        let line = encode_response_line(&resp).unwrap();
        prop_assert_eq!(&decode_response_line(&line).unwrap(), &resp);

        let mut frame = Vec::new();
        BinaryCodec.encode_frame(&resp, &mut frame).unwrap();
        let mut cursor = std::io::Cursor::new(frame);
        prop_assert_eq!(&BinaryCodec.read_frame(&mut cursor).unwrap().unwrap(), &resp);
    }
}

/// Non-answer variants equivalently cross both codecs (TextCodec is the
/// v1 renderer, so this also pins the v1 lines).
#[test]
fn all_response_variants_agree_across_codecs() {
    let variants = vec![
        Response::Pong,
        Response::Bye,
        Response::Hello {
            version: 2,
            codec: CodecKind::Binary,
        },
        Response::Datasets(vec!["demo:120:2:3:21".into()]),
        Response::Algorithms(ALGORITHM_NAMES.iter().map(|s| s.to_string()).collect()),
        Response::Stats {
            hits: 2,
            misses: 1,
            entries: 1,
            evictions: 0,
            hit_rate: 2.0 / 3.0,
            warm_hits: 4,
            warm_misses: 2,
            warm_entries: 1,
            uptime_secs: 77,
            total_queries: 31,
            queue_depth: 3,
            shed_total: 9,
            conns_open: 2,
            mutations_total: 6,
        },
        Response::Info {
            shards: 4,
            strategy: "stratified".into(),
            workers: 4,
            datasets: 1,
            cache_entries: 0,
            warmstart: true,
            uptime_secs: 5,
            total_queries: 2,
        },
        Response::Metrics {
            enabled: true,
            counters: vec![("queries.total".into(), 31), ("conn.active".into(), 1)],
            histograms: vec![fairhms_service::protocol::WireHistogram {
                name: "engine.cache_lookup".into(),
                count: 31,
                sum: 12_400,
                p50: 330,
                p90: 610,
                p99: 900,
                max: 1_024,
            }],
        },
        Response::Shards(8),
        Response::BatchHeader {
            n: 14,
            stream: true,
        },
        Response::Loaded {
            name: "extra".into(),
            rows: 2000,
            dim: 3,
            groups: 3,
            skyline: 940,
        },
        Response::Mutated {
            name: "extra".into(),
            op: "append".into(),
            rows: 2001,
            skyline: 941,
            sky_changed: true,
            cache_dropped: 2,
            warm_dropped: 1,
        },
    ];
    for resp in variants {
        let mut text_frame = Vec::new();
        TextCodec.encode_frame(&resp, &mut text_frame).unwrap();
        let mut binary_frame = Vec::new();
        BinaryCodec.encode_frame(&resp, &mut binary_frame).unwrap();
        let mut tc = std::io::Cursor::new(text_frame);
        let mut bc = std::io::Cursor::new(binary_frame);
        let t = TextCodec.read_frame(&mut tc).unwrap().unwrap();
        let b = BinaryCodec.read_frame(&mut bc).unwrap().unwrap();
        assert_eq!(t, resp);
        assert_eq!(b, resp);
    }
}

// ---------------------------------------------------------------------
// Streaming batches
// ---------------------------------------------------------------------

/// Satellite pin: all `n` seq-tagged answers arrive (each seq exactly
/// once), reassembly equals the buffered batch output bit-for-bit, and
/// per-query failures are seq-tagged `ERR` frames — under both codecs.
#[test]
fn streamed_batches_reassemble_to_buffered_output() {
    let server = spawn_server(ServeOptions::default());
    let addr = server.addr();
    let queries = mixed_queries();

    // Buffered reference over a separate connection.
    let mut reference_client = WireClient::connect(addr).unwrap();
    let reference = reference_client.batch(&queries, false).unwrap();

    for kind in [CodecKind::Text, CodecKind::Binary] {
        let mut client = match kind {
            CodecKind::Text => WireClient::connect(addr).unwrap(),
            CodecKind::Binary => WireClient::negotiate(addr, kind).unwrap(),
        };
        let header = client.send_batch(&queries, true).unwrap();
        assert_eq!(
            header,
            Response::BatchHeader {
                n: queries.len(),
                stream: true
            },
            "{kind}: header must advertise streaming"
        );
        let mut slots: Vec<Option<Result<WireAnswer, String>>> = vec![None; queries.len()];
        for frame in 0..queries.len() {
            let (seq, res) = match client.recv().unwrap() {
                Response::Answer { seq, answer } => (seq, Ok(answer)),
                Response::Error { seq, message } => (seq, Err(message)),
                other => panic!("{kind}: unexpected frame {frame}: {other:?}"),
            };
            let seq = seq.unwrap_or_else(|| panic!("{kind}: frame {frame} missing seq")) as usize;
            assert!(seq < queries.len(), "{kind}: seq {seq} out of range");
            assert!(slots[seq].is_none(), "{kind}: seq {seq} delivered twice");
            slots[seq] = Some(res);
        }
        // Connection stays in sync after the stream.
        client.send_line("PING").unwrap();
        assert_eq!(client.recv().unwrap(), Response::Pong);

        for (i, (slot, r)) in slots.into_iter().zip(&reference).enumerate() {
            let ctx = format!("{kind}: query {i}");
            match (slot.expect("all seqs delivered"), r) {
                (Ok(g), Ok(r)) => assert_same_payload(&g, r, &ctx),
                // Buffered batch errors decode to `Protocol(wire message)`
                // in the client; streamed frames carry the raw message.
                (Err(msg), Err(ServiceError::Protocol(m))) => assert_eq!(&msg, m, "{ctx}"),
                (g, r) => panic!("{ctx}: streamed {g:?} vs buffered {r:?}"),
            }
        }
    }
    server.shutdown();
}

/// Satellite pin: the stream gate sheds load with `ERR busy` — the batch
/// lines are consumed first, so shedding never desynchronizes the
/// connection. (`max_stream_batches: 0` makes the shed deterministic;
/// the gate's counting semantics are unit-tested in `server.rs`.)
#[test]
fn streamed_batch_beyond_gate_answers_busy_without_desync() {
    let server = spawn_server(ServeOptions {
        max_stream_batches: 0,
        ..ServeOptions::default()
    });
    let mut client = WireClient::connect(server.addr()).unwrap();

    let queries = vec![Query::new("demo", 3), Query::new("demo", 4)];
    match client.send_batch(&queries, true).unwrap() {
        Response::Busy {
            seq: None,
            retry_after_ms,
            message,
        } => {
            assert!(retry_after_ms >= 1, "retry advice must be actionable");
            assert!(
                message.contains("streamed batches in flight (limit 0)"),
                "expected a stream-gate shed, got {message:?}"
            );
        }
        other => panic!("expected busy, got {other:?}"),
    }
    // The two batch lines were consumed: next request answers normally.
    client.send_line("PING").unwrap();
    assert_eq!(client.recv().unwrap(), Response::Pong);

    // Buffered batches are not gated.
    let buffered = client.batch(&queries, false).unwrap();
    assert!(buffered.iter().all(|r| r.is_ok()));
    server.shutdown();
}

// ---------------------------------------------------------------------
// LOAD admin verb
// ---------------------------------------------------------------------

fn write_csv(path: &PathBuf) {
    // 3 columns + group label; enough rows for small k.
    let mut s = String::new();
    for i in 0..40 {
        let x = (i as f64) / 40.0;
        s.push_str(&format!(
            "{},{},{},g{}\n",
            x,
            1.0 - x,
            (x * 7.0).sin().abs(),
            i % 2
        ));
    }
    std::fs::write(path, s).unwrap();
}

#[test]
fn load_registers_csv_from_allowlist_and_refuses_escapes() {
    let root = std::env::temp_dir().join("fairhms_protocol_v2_load");
    std::fs::create_dir_all(root.join("sub")).unwrap();
    write_csv(&root.join("extra.csv"));
    write_csv(&root.join("sub/nested.csv"));
    let outside = std::env::temp_dir().join("fairhms_protocol_v2_outside.csv");
    write_csv(&outside);

    let server = spawn_server(ServeOptions {
        load_root: Some(root.clone()),
        ..ServeOptions::default()
    });
    let mut client = WireClient::connect_env(server.addr()).unwrap();

    // A successful LOAD reports the dataset shape and makes it queryable.
    client.send_line("LOAD name=extra path=extra.csv").unwrap();
    match client.recv().unwrap() {
        Response::Loaded {
            name,
            rows,
            dim,
            groups,
            ..
        } => {
            assert_eq!((name.as_str(), rows, dim, groups), ("extra", 40, 3, 2));
        }
        other => panic!("expected Loaded, got {other:?}"),
    }
    let ans = client.query(&Query::new("extra", 3)).unwrap();
    assert_eq!(ans.indices.len(), 3);
    client.send_line("LIST").unwrap();
    match client.recv().unwrap() {
        Response::Datasets(summaries) => {
            assert!(summaries.iter().any(|s| s.starts_with("extra:40:3:2:")));
        }
        other => panic!("{other:?}"),
    }
    // Nested relative paths under the root are fine.
    client
        .send_line("LOAD name=nested path=sub/nested.csv")
        .unwrap();
    assert!(matches!(client.recv().unwrap(), Response::Loaded { .. }));

    // Refusals: traversal, absolute path, missing file, bad name — each a
    // typed ERR on a connection that stays in sync.
    for bad in [
        "LOAD name=evil path=../fairhms_protocol_v2_outside.csv".to_string(),
        format!("LOAD name=evil path={}", outside.display()),
        "LOAD name=evil path=sub/../../fairhms_protocol_v2_outside.csv".to_string(),
        "LOAD name=evil path=missing.csv".to_string(),
        "LOAD name=bad,name path=extra.csv".to_string(), // wire-unsafe catalog key
    ] {
        client.send_line(&bad).unwrap();
        match client.recv().unwrap() {
            Response::Error { message, .. } => {
                assert!(!message.is_empty(), "{bad}: empty error message");
            }
            other => panic!("{bad}: expected ERR, got {other:?}"),
        }
        client.send_line("PING").unwrap();
        assert_eq!(client.recv().unwrap(), Response::Pong, "{bad}: desync");
    }
    // The refused names never entered the catalog.
    client.send_line("LIST").unwrap();
    match client.recv().unwrap() {
        Response::Datasets(summaries) => {
            assert!(!summaries.iter().any(|s| s.starts_with("evil")));
        }
        other => panic!("{other:?}"),
    }
    server.shutdown();
}

#[test]
fn load_is_disabled_without_load_root() {
    let server = spawn_server(ServeOptions::default());
    let mut client = WireClient::connect_env(server.addr()).unwrap();
    client.send_line("LOAD name=x path=x.csv").unwrap();
    match client.recv().unwrap() {
        Response::Error { message, .. } => {
            assert!(message.contains("LOAD disabled"), "{message}");
        }
        other => panic!("expected ERR, got {other:?}"),
    }
    client.send_line("PING").unwrap();
    assert_eq!(client.recv().unwrap(), Response::Pong);
    server.shutdown();
}
