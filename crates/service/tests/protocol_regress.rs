//! Wire-protocol regression tests pinning the error behaviors documented
//! in docs/PROTOCOL.md: malformed `SHARDS` values and oversized batches
//! answer with the documented `ERR` lines *without desynchronizing the
//! connection*, while the two connection-fatal framing limits actually
//! drop the connection.

use std::io::{BufRead, BufReader, BufWriter, Write};
use std::net::TcpStream;
use std::sync::Arc;

use fairhms_data::Dataset;
use fairhms_service::{Catalog, Query, QueryEngine, Server, ServerConfig};

struct Client {
    reader: BufReader<TcpStream>,
    writer: BufWriter<TcpStream>,
}

impl Client {
    fn connect(addr: std::net::SocketAddr) -> Client {
        let stream = TcpStream::connect(addr).unwrap();
        Client {
            reader: BufReader::new(stream.try_clone().unwrap()),
            writer: BufWriter::new(stream),
        }
    }

    fn send(&mut self, line: &str) {
        writeln!(self.writer, "{line}").unwrap();
        self.writer.flush().unwrap();
    }

    fn recv(&mut self) -> String {
        let mut line = String::new();
        self.reader.read_line(&mut line).unwrap();
        line.trim().to_string()
    }

    /// The connection is alive and in sync: a PING answers pong.
    fn assert_in_sync(&mut self) {
        self.send("PING");
        assert_eq!(self.recv(), "OK pong", "connection desynchronized");
    }
}

fn spawn_server() -> Server {
    let catalog = Arc::new(Catalog::new());
    let data = Dataset::new(
        "toy",
        2,
        vec![1.0, 0.1, 0.2, 0.9, 0.7, 0.7, 0.9, 0.3],
        vec![0, 1, 0, 1],
        vec![],
    )
    .unwrap();
    catalog.insert_dataset(data).unwrap();
    let engine = Arc::new(QueryEngine::new(catalog, 64));
    Server::spawn(
        engine,
        ServerConfig {
            addr: "127.0.0.1:0".to_string(),
            workers: 2,
        },
    )
    .unwrap()
}

#[test]
fn malformed_shards_values_err_without_desync() {
    let server = spawn_server();
    let mut c = Client::connect(server.addr());

    // PROTOCOL.md: SHARDS n accepts 1..=64; everything else is a
    // protocol error answered on a connection that stays usable.
    for bad in [
        "SHARDS 0",
        "SHARDS 65",
        "SHARDS -3",
        "SHARDS x",
        "SHARDS 2 4",
    ] {
        c.send(bad);
        let resp = c.recv();
        assert!(
            resp.starts_with("ERR protocol error:"),
            "{bad:?} answered {resp:?}"
        );
        c.assert_in_sync();
    }

    // The rejected values must not have changed the knob.
    c.send("SHARDS");
    let default_shards = c.recv();
    assert!(
        default_shards.starts_with("OK shards="),
        "got {default_shards:?}"
    );

    // A valid set round-trips and shows up in INFO.
    c.send("SHARDS 4");
    assert_eq!(c.recv(), "OK shards=4");
    c.send("INFO");
    let info = c.recv();
    assert!(
        info.starts_with("OK shards=4 strategy=") && info.contains(" workers=2 datasets=1 "),
        "got {info:?}"
    );
    c.assert_in_sync();
    server.shutdown();
}

#[test]
fn oversized_batch_count_errs_without_desync() {
    let server = spawn_server();
    let mut c = Client::connect(server.addr());

    // PROTOCOL.md: BATCH n with n > 100 000 is refused with an ERR line;
    // nothing is consumed, the connection stays open.
    c.send("BATCH 100001");
    let resp = c.recv();
    assert!(
        resp.starts_with("ERR protocol error: batch size"),
        "got {resp:?}"
    );
    c.assert_in_sync();

    // A malformed line inside a smaller batch fails the whole batch with
    // one ERR after consuming all n lines — the valid tail line is NOT
    // executed as a top-level request.
    c.send("BATCH 2");
    c.send("NOT-A-QUERY");
    c.send("QUERY dataset=toy k=2");
    let resp = c.recv();
    assert!(resp.starts_with("ERR protocol error:"), "got {resp:?}");
    c.assert_in_sync();
    server.shutdown();
}

/// Satellite regression (ISSUE 4): the client-side serializers must
/// *error* on wire-unsafe field values — a value containing spaces or
/// newlines would tokenize into extra fields or extra request lines and
/// silently desynchronize every later response on the connection.
#[test]
fn wire_unsafe_query_values_error_instead_of_desyncing() {
    use fairhms_service::protocol::{format_response, query_to_wire};
    use fairhms_service::{Answer, QueryResponse, ServiceError};

    // Crafted alg: would inject a `cached=true` field into the line.
    let mut q = Query::new("toy", 2);
    q.alg = "bigreedy cached=true".into();
    assert!(matches!(
        query_to_wire(&q),
        Err(ServiceError::Protocol(m)) if m.contains("wire-safe")
    ));

    // Crafted dataset: a newline would smuggle a whole second request.
    let mut q = Query::new("toy\nSHUTDOWN", 2);
    q.alg = "bigreedy".into();
    assert!(matches!(
        query_to_wire(&q),
        Err(ServiceError::Protocol(m)) if m.contains("wire-safe")
    ));

    // Same seam on the response side: a crafted display name must not
    // produce a line that parses as several fields.
    let resp = QueryResponse {
        answer: Arc::new(Answer {
            indices: vec![0],
            mhr: None,
            violations: 0,
            alg: "Bi Greedy\nERR injected".into(),
            solve_micros: 1,
        }),
        cached: false,
        micros: 1,
        stages: None,
    };
    assert!(matches!(
        format_response(&resp),
        Err(ServiceError::Protocol(m)) if m.contains("wire-safe")
    ));

    // Ordinary values still serialize byte-identically to v1.
    let mut ok = Query::new("toy", 2);
    ok.alg = "bigreedy+".into();
    assert_eq!(
        query_to_wire(&ok).unwrap(),
        "QUERY dataset=toy k=2 alg=bigreedy+ alpha=0.1 balanced=false seed=42 skyline=true"
    );
}

#[test]
fn oversized_request_line_drops_the_connection() {
    let server = spawn_server();
    let mut c = Client::connect(server.addr());

    // PROTOCOL.md: a request line longer than 1 MiB is connection-fatal.
    let huge = "QUERY dataset=toy k=2 ".to_string() + &"x".repeat(2 << 20);
    c.send(&huge);
    // A dropped connection surfaces as clean EOF or as a reset error
    // (the server closes with our unread bytes still in its buffer).
    let mut line = String::new();
    match c.reader.read_line(&mut line) {
        Ok(n) => assert_eq!(
            n, 0,
            "server answered an oversized line instead of dropping"
        ),
        Err(e) => assert!(
            matches!(
                e.kind(),
                std::io::ErrorKind::ConnectionReset | std::io::ErrorKind::BrokenPipe
            ),
            "unexpected error {e:?}"
        ),
    }

    // The server itself is unaffected: a fresh connection works.
    let mut fresh = Client::connect(server.addr());
    fresh.assert_in_sync();
    fresh.send(
        &fairhms_service::protocol::query_to_wire(&Query::new("toy", 2)).expect("wire-safe query"),
    );
    let resp = fresh.recv();
    assert!(resp.starts_with("OK alg="), "got {resp:?}");
    server.shutdown();
}
