//! Warm-start equivalence suite: the warm-start tier must be **provably
//! inert** — every registry algorithm returns bit-identical answers
//! (`mhr` compared by bits) with the tier enabled vs. disabled, across
//! near-miss query sequences, dataset replacement (epoch bumps), and
//! cache eviction. If any of these fail, warm-starting is changing
//! answers and must not ship.
//!
//! Engines are built with *explicit* [`WarmConfig`]s, so the suite pins
//! the contract under any `FAIRHMS_TEST_WARMSTART` / shard / codec
//! environment the CI matrix selects.

use std::sync::Arc;

use rand::rngs::StdRng;
use rand::SeedableRng;

use fairhms_core::registry::ALGORITHM_NAMES;
use fairhms_data::{gen, Dataset};
use fairhms_service::{Catalog, Query, QueryEngine, WarmConfig};

fn generated(name: &str, n: usize, d: usize, c: usize, seed: u64) -> Dataset {
    let mut rng = StdRng::seed_from_u64(seed);
    let points = gen::anti_correlated(n, d, &mut rng);
    let groups = gen::groups_by_sum(&points, d, c);
    Dataset::new(
        name,
        d,
        points,
        groups,
        (0..c).map(|g| format!("g{g}")).collect(),
    )
    .unwrap()
}

fn engine(data: Dataset, warm: WarmConfig) -> QueryEngine {
    let cat = Arc::new(Catalog::new());
    cat.insert_dataset(data).unwrap();
    QueryEngine::with_warm_config(cat, 1024, warm)
}

fn warm_on() -> WarmConfig {
    WarmConfig {
        enabled: true,
        capacity: 512,
    }
}

fn warm_off() -> WarmConfig {
    WarmConfig {
        enabled: false,
        capacity: 0,
    }
}

fn assert_same_outcome(
    a: &Result<fairhms_service::QueryResponse, fairhms_service::ServiceError>,
    b: &Result<fairhms_service::QueryResponse, fairhms_service::ServiceError>,
    ctx: &str,
) {
    match (a, b) {
        (Ok(a), Ok(b)) => {
            assert_eq!(
                a.answer.indices, b.answer.indices,
                "{ctx}: indices diverged"
            );
            assert_eq!(
                a.answer.mhr.map(f64::to_bits),
                b.answer.mhr.map(f64::to_bits),
                "{ctx}: mhr bits diverged"
            );
            assert_eq!(
                a.answer.violations, b.answer.violations,
                "{ctx}: violations diverged"
            );
            assert_eq!(a.answer.alg, b.answer.alg, "{ctx}: alg name diverged");
        }
        // An algorithm that rejects the instance (e.g. a k < d gate)
        // must reject it with the identical typed error.
        (Err(ea), Err(eb)) => assert_eq!(ea, eb, "{ctx}: errors diverged"),
        (a, b) => panic!("{ctx}: one path failed, the other did not: {a:?} vs {b:?}"),
    }
}

/// The headline contract: every registry algorithm, both bounds
/// policies, skyline on/off, over a *near-miss* α sweep (same `(dataset,
/// k, family)` warm key, distinct fingerprints — each solve is cold for
/// the solution cache, so the warm tier actually gets exercised), is
/// bit-identical between a warm-start engine and a disabled one.
#[test]
fn served_answers_are_warmstart_invariant() {
    let data = || generated("eq", 240, 2, 3, 21);
    let warm = engine(data(), warm_on());
    let cold = engine(data(), warm_off());

    for alg in ALGORITHM_NAMES {
        for (k, balanced, skyline) in [(3usize, false, true), (5, true, true), (4, false, false)] {
            // Near-miss sweep: the first α populates the warm entry, the
            // rest reuse its δ-net and prepared-bounds scan.
            for alpha in [0.05f64, 0.1, 0.2, 0.3] {
                let mut q = Query::new("eq", k);
                q.alg = alg.to_string();
                q.balanced = balanced;
                q.skyline = skyline;
                q.alpha = alpha;
                let a = warm.execute(&q);
                let b = cold.execute(&q);
                assert_same_outcome(
                    &a,
                    &b,
                    &format!("alg={alg} k={k} balanced={balanced} skyline={skyline} α={alpha}"),
                );
            }
        }
    }

    // The tier was actually used: components were reused, and the
    // disabled engine never touched it.
    let ws = warm.warm_stats();
    assert!(
        ws.hits > 0,
        "warm tier never reused anything across the near-miss sweep: {ws:?}"
    );
    assert!(ws.misses > 0 && ws.entries > 0);
    assert!(warm.warmstart_enabled());
    assert!(!cold.warmstart_enabled());
    assert_eq!(cold.warm_stats(), fairhms_service::WarmStats::default());
}

/// Repeating one exact query must still hit the *solution* cache — the
/// warm tier sits below it, not instead of it — and near-miss queries
/// must miss the solution cache while reusing warm state.
#[test]
fn warm_tier_composes_with_the_solution_cache() {
    let eng = engine(generated("eq", 200, 3, 3, 5), warm_on());
    let q = Query::new("eq", 6);
    assert!(!eng.execute(&q).unwrap().cached);
    assert!(eng.execute(&q).unwrap().cached, "exact repeat not cached");
    let before = eng.warm_stats();

    let mut near = q.clone();
    near.alpha = 0.17;
    let resp = eng.execute(&near).unwrap();
    assert!(!resp.cached, "near-miss wrongly served from answer cache");
    let after = eng.warm_stats();
    // A BiGreedy near-miss reuses all three warm components: the
    // prepared bounds, the δ-net, and the cached db_max vector.
    assert!(
        after.hits >= before.hits + 3,
        "near-miss did not reuse all three warm components: {before:?} -> {after:?}"
    );
}

/// Dataset replacement bumps the epoch: warm state computed against the
/// old data must be unreachable, and post-replacement answers must equal
/// a fresh engine's over the new data.
#[test]
fn epoch_bump_invalidates_warm_state() {
    let old = || generated("swap", 180, 2, 3, 11);
    let new = || generated("swap", 180, 2, 3, 99);
    let eng = engine(old(), warm_on());

    let mut q = Query::new("swap", 4);
    q.alg = "bigreedy".into();
    eng.execute(&q).unwrap();
    let mut near = q.clone();
    near.alpha = 0.2;
    eng.execute(&near).unwrap();
    assert!(eng.warm_stats().hits > 0);

    // Replace the dataset under the same name.
    eng.catalog().insert_dataset(new()).unwrap();
    let fresh = engine(new(), warm_off());
    for alpha in [0.1f64, 0.2] {
        let mut qr = q.clone();
        qr.alpha = alpha;
        let a = eng.execute(&qr);
        let b = fresh.execute(&qr);
        assert_same_outcome(&a, &b, &format!("post-replacement α={alpha}"));
    }
}

/// A tiny warm cache (capacity 1) thrashes constantly — answers must
/// still be identical to the disabled engine (eviction can only cost
/// speed, never correctness).
#[test]
fn eviction_thrash_never_changes_answers() {
    let data = || generated("thrash", 160, 2, 3, 3);
    let tiny = engine(
        data(),
        WarmConfig {
            enabled: true,
            capacity: 1,
        },
    );
    let cold = engine(data(), warm_off());
    // Alternating (k, family) keys so every solve evicts the previous
    // entry.
    for round in 0..3 {
        for (k, alg) in [(3usize, "bigreedy"), (4, "bigreedy+"), (3, "f-greedy")] {
            let mut q = Query::new("thrash", k);
            q.alg = alg.to_string();
            q.alpha = 0.05 + 0.05 * round as f64;
            assert_same_outcome(
                &tiny.execute(&q),
                &cold.execute(&q),
                &format!("round={round} alg={alg} k={k}"),
            );
        }
    }
}

/// The satellite edge case end-to-end: a dataset with a vacant (zero-
/// member) group must derive feasible bounds (lower bound 0 for the
/// empty group) and answer identically warm vs. cold.
#[test]
fn vacant_group_bounds_stay_feasible_warm_and_cold() {
    let mk = || {
        Dataset::new(
            "vacant",
            2,
            vec![1.0, 0.1, 0.2, 0.9, 0.7, 0.7, 0.9, 0.3, 0.5, 0.6, 0.3, 0.8],
            vec![0, 1, 0, 1, 0, 1],
            // Group 2 exists in the schema but owns no rows.
            vec!["a".into(), "b".into(), "ghost".into()],
        )
        .unwrap()
    };
    let warm = engine(mk(), warm_on());
    let cold = engine(mk(), warm_off());
    for balanced in [false, true] {
        for alg in ["intcov", "bigreedy", "f-greedy"] {
            let mut q = Query::new("vacant", 3);
            q.alg = alg.into();
            q.balanced = balanced;
            let a = warm.execute(&q);
            let b = cold.execute(&q);
            assert_same_outcome(&a, &b, &format!("vacant group alg={alg} bal={balanced}"));
            let resp = a.unwrap();
            assert_eq!(
                resp.answer.violations, 0,
                "vacant group made feasible bounds unattainable (alg={alg} bal={balanced})"
            );
        }
    }
}
