//! End-to-end serving tests: a generated dataset behind a real TCP server,
//! a mixed batch of 100+ queries, and the cache-identity guarantees the
//! engine promises.
//!
//! The client side runs through [`WireClient::connect_env`], so setting
//! `FAIRHMS_TEST_CODEC=binary` (as `scripts/ci.sh` does on its second
//! codec pass) replays this whole suite over the v2 binary framing — the
//! assertions are codec-independent because answers are contractually
//! bit-identical under both codecs.

use std::sync::Arc;

use rand::rngs::StdRng;
use rand::SeedableRng;

use fairhms_data::{gen, Dataset};
use fairhms_service::protocol::{self, Response, WireAnswer};
use fairhms_service::{Catalog, Query, QueryEngine, Server, ServerConfig, WireClient};

/// An anti-correlated dataset in the paper's evaluation style: n points,
/// d attributes, c groups assigned by attribute-sum quantiles.
fn generated_dataset(name: &str, n: usize, d: usize, c: usize, seed: u64) -> Dataset {
    let mut rng = StdRng::seed_from_u64(seed);
    let points = gen::anti_correlated(n, d, &mut rng);
    let groups = gen::groups_by_sum(&points, d, c);
    Dataset::new(
        name,
        d,
        points,
        groups,
        (0..c).map(|g| format!("g{g}")).collect(),
    )
    .unwrap()
}

fn engine_with(name: &str) -> Arc<QueryEngine> {
    let catalog = Arc::new(Catalog::new());
    catalog
        .insert_dataset(generated_dataset(name, 400, 3, 3, 9))
        .unwrap();
    Arc::new(QueryEngine::new(catalog, 4096))
}

/// ≥ 100 mixed (k, bounds policy, algorithm, seed) queries with planned
/// repeats, so a batch exercises both cold solves and cache hits.
fn mixed_queries(dataset: &str) -> Vec<Query> {
    let algs = ["bigreedy", "f-greedy", "g-greedy", "streaming"];
    let mut qs = Vec::new();
    for round in 0..3 {
        for k in [4usize, 5, 6, 8, 10] {
            for (i, alg) in algs.iter().enumerate() {
                for balanced in [false, true] {
                    let mut q = Query::new(dataset, k);
                    q.alg = alg.to_string();
                    q.balanced = balanced;
                    q.alpha = 0.25;
                    // round 2 varies the seed → distinct fingerprints;
                    // rounds 0 and 1 are identical → guaranteed hits.
                    q.seed = if round == 2 { 1000 + i as u64 } else { 42 };
                    qs.push(q);
                }
            }
        }
    }
    assert!(qs.len() >= 100, "only {} queries", qs.len());
    qs
}

#[test]
fn tcp_end_to_end_mixed_batch_with_cache_hits() {
    let engine = engine_with("anticor");
    let server = Server::spawn(
        Arc::clone(&engine),
        ServerConfig {
            addr: "127.0.0.1:0".to_string(),
            workers: 4,
        },
    )
    .unwrap();
    let addr = server.addr();

    // Cold reference answers, computed through the engine directly.
    let reference = engine_with("anticor");
    let queries = mixed_queries("anticor");
    let expected: Vec<WireAnswer> = queries
        .iter()
        .map(|q| {
            let r = reference.execute(q).unwrap();
            WireAnswer {
                alg: r.answer.alg.clone(),
                cached: false,
                micros: 0,
                violations: r.answer.violations,
                mhr: r.answer.mhr,
                indices: r.answer.indices.clone(),
            }
        })
        .collect();

    {
        // FAIRHMS_TEST_CODEC selects text (v1, no handshake) or binary
        // (v2 HELLO handshake) — the assertions below hold under both.
        let mut client = WireClient::connect_env(addr).unwrap();
        let results = client.batch(&queries, false).unwrap();

        let mut hits = 0usize;
        for (i, (got, exp)) in results.iter().zip(&expected).enumerate() {
            let got = got
                .as_ref()
                .unwrap_or_else(|e| panic!("query {i} failed: {e}"));
            if got.cached {
                hits += 1;
            }
            // Cached or cold, over the wire or in process: identical
            // payloads, bit-exact MHR.
            assert_eq!(got.indices, exp.indices, "query {i} indices diverged");
            assert_eq!(
                got.mhr.map(f64::to_bits),
                exp.mhr.map(f64::to_bits),
                "query {i} mhr diverged"
            );
            assert_eq!(got.alg, exp.alg, "query {i} algorithm diverged");
            assert_eq!(got.violations, exp.violations);
        }
        // Rounds 0 and 1 are identical, so at least a quarter of the batch
        // must be cache hits (single-flight may convert even more).
        assert!(
            hits >= queries.len() / 4,
            "expected cache hits, got {hits}/{}",
            queries.len()
        );

        // STATS agrees there were hits.
        client.send_line("STATS").unwrap();
        match client.recv().unwrap() {
            Response::Stats { hit_rate, hits, .. } => {
                assert!(hit_rate > 0.0 && hits > 0, "hit_rate={hit_rate}");
            }
            other => panic!("expected STATS reply, got {other:?}"),
        }
    } // drop the client connection before shutting down

    server.shutdown();
}

#[test]
fn protocol_round_trip_then_solve_matches_direct_execution() {
    // serialize → parse → solve must equal solving the original query.
    let engine = engine_with("rt");
    let mut q = Query::new("rt", 7);
    q.alg = "BiGreedy".into();
    q.alpha = 0.3;
    q.balanced = true;
    q.seed = 5;
    let wire = protocol::query_to_wire(&q).unwrap();
    let parsed = match protocol::parse_request(&wire).unwrap() {
        protocol::Request::Query(b) => *b,
        other => panic!("{other:?}"),
    };
    assert_eq!(parsed, q);

    let direct = engine.execute(&q).unwrap();
    let via_wire = engine.execute(&parsed).unwrap();
    assert_eq!(direct.answer.indices, via_wire.answer.indices);
    assert_eq!(
        direct.answer.mhr.map(f64::to_bits),
        via_wire.answer.mhr.map(f64::to_bits)
    );
    assert!(via_wire.cached, "identical fingerprint must hit the cache");
}

#[test]
fn cache_hit_is_bit_identical_to_cold_solve_across_algorithms() {
    let engine = engine_with("ident");
    for alg in ["bigreedy", "bigreedy+", "f-greedy", "g-greedy", "streaming"] {
        let mut q = Query::new("ident", 6);
        q.alg = alg.into();
        let cold = engine.execute(&q).unwrap();
        let warm = engine.execute(&q).unwrap();
        assert!(!cold.cached && warm.cached, "{alg}");
        assert!(
            Arc::ptr_eq(&cold.answer, &warm.answer),
            "{alg}: cache must share the answer allocation"
        );
        assert_eq!(cold.answer.indices, warm.answer.indices, "{alg}");
        assert_eq!(
            cold.answer.mhr.map(f64::to_bits),
            warm.answer.mhr.map(f64::to_bits),
            "{alg}"
        );
    }
}
