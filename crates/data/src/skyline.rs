//! Dominance and skyline computation.
//!
//! A point `p` dominates `q` when `p ≥ q` coordinate-wise with at least one
//! strict inequality. The skyline (set of non-dominated points) contains
//! the optimum of every nonnegative linear utility, so HMS algorithms can
//! restrict their search to it. FairHMS additionally needs dominated points
//! that are the best *within their group*, hence [`group_skyline_indices`]:
//! the union of per-group skylines, which the paper's experiments
//! precompute as the algorithm input (Table 2's "#skylines" column is the
//! sum of per-group skyline sizes).

use crate::dataset::Dataset;

/// Returns `true` if `p` dominates `q` (`p ≥ q` everywhere, `>` somewhere).
pub fn dominates(p: &[f64], q: &[f64]) -> bool {
    debug_assert_eq!(p.len(), q.len());
    let mut strict = false;
    for (a, b) in p.iter().zip(q) {
        if a < b {
            return false;
        }
        if a > b {
            strict = true;
        }
    }
    strict
}

/// Indices of the skyline of `points` (row-major, `dim` columns), in input
/// order. Duplicates of a skyline point are all kept (none dominates the
/// other), matching the multiset semantics FairHMS needs: two equal points
/// from different groups are distinct choices.
pub fn skyline_of(points: &[f64], dim: usize) -> Vec<usize> {
    let n = points.len().checked_div(dim).unwrap_or(0);
    if n == 0 {
        return vec![];
    }
    if dim == 2 {
        return skyline_2d(points);
    }
    // Block-nested-loop with a sort by coordinate sum: a point can only be
    // dominated by points with a larger or equal sum, so one pass over the
    // sorted order with a window of current skyline members suffices.
    let mut order: Vec<usize> = (0..n).collect();
    let sum = |i: usize| -> f64 { points[i * dim..(i + 1) * dim].iter().sum() };
    order.sort_by(|&a, &b| sum(b).total_cmp(&sum(a)));
    let mut window: Vec<usize> = Vec::new();
    for &i in &order {
        let p = &points[i * dim..(i + 1) * dim];
        if !window
            .iter()
            .any(|&j| dominates(&points[j * dim..(j + 1) * dim], p))
        {
            window.push(i);
        }
    }
    window.sort_unstable();
    window
}

/// 2D skyline by a single sort-and-sweep.
fn skyline_2d(points: &[f64]) -> Vec<usize> {
    let n = points.len() / 2;
    let mut order: Vec<usize> = (0..n).collect();
    // x descending; ties broken y descending so the sweep sees the best
    // duplicate first.
    order.sort_by(|&a, &b| {
        points[b * 2]
            .total_cmp(&points[a * 2])
            .then(points[b * 2 + 1].total_cmp(&points[a * 2 + 1]))
    });
    // Sweep x-descending in tie groups. A point is on the skyline iff it
    // has the maximal y within its x-tie group (same x, higher y dominates)
    // and that y strictly exceeds the best y seen at any larger x (larger x,
    // equal-or-higher y dominates). Duplicates of a skyline point all pass.
    let mut out = Vec::new();
    let mut best_y_strict = f64::NEG_INFINITY;
    let mut i = 0;
    while i < order.len() {
        let x = points[order[i] * 2];
        let mut j = i;
        let mut tie_max = f64::NEG_INFINITY;
        while j < order.len() && points[order[j] * 2] == x {
            tie_max = tie_max.max(points[order[j] * 2 + 1]);
            j += 1;
        }
        // `==` is not reflexive for NaN: a NaN x produces an empty tie
        // group, which would stall the sweep. Consume the row regardless
        // (its tie_max stays -inf, so it is never emitted).
        j = j.max(i + 1);
        if tie_max > best_y_strict {
            for &idx in &order[i..j] {
                if points[idx * 2 + 1] == tie_max {
                    out.push(idx);
                }
            }
            best_y_strict = tie_max;
        }
        i = j;
    }
    out.sort_unstable();
    out
}

/// Skyline of a [`Dataset`] (global, ignoring groups).
pub fn skyline_indices(data: &Dataset) -> Vec<usize> {
    skyline_of(data.points_flat(), data.dim())
}

/// Union of per-group skylines, sorted ascending — the standard FairHMS
/// preprocessing (a group's best points must stay available even when
/// globally dominated).
pub fn group_skyline_indices(data: &Dataset) -> Vec<usize> {
    let all: Vec<usize> = (0..data.len()).collect();
    group_skyline_of_rows(data, &all)
}

/// Union of per-group skylines *restricted to `rows`* (global row ids;
/// groups absent from `rows` contribute nothing), sorted ascending.
///
/// This is the per-shard work unit of the sharded preparation pipeline
/// (see [`crate::shard`]): it reads the shared point matrix through
/// `data` — a view, never a copy — and returns global ids directly, so
/// shard outputs can be unioned without index translation.
/// `group_skyline_of_rows(data, 0..n)` equals [`group_skyline_indices`].
pub fn group_skyline_of_rows(data: &Dataset, rows: &[usize]) -> Vec<usize> {
    let mut out: Vec<usize> = Vec::new();
    for bucket in bucket_rows_by_group(data, rows)
        .iter()
        .filter(|bucket| !bucket.is_empty())
    {
        out.extend(bucket_skyline(data, bucket));
    }
    out.sort_unstable();
    out
}

/// Splits `rows` (global ids) into per-group buckets, indexed by group id
/// (relative order within each bucket preserved).
pub fn bucket_rows_by_group(data: &Dataset, rows: &[usize]) -> Vec<Vec<usize>> {
    let mut by_group: Vec<Vec<usize>> = vec![Vec::new(); data.num_groups()];
    for &r in rows {
        by_group[data.group_of(r)].push(r);
    }
    by_group
}

/// Skyline of one bucket of rows (global ids in, global ids out, bucket
/// order preserved among survivors). The per-group work unit shared by
/// [`group_skyline_of_rows`] and the parallel merge in [`crate::shard`] —
/// buckets are independent, so callers may run one per thread.
pub fn bucket_skyline(data: &Dataset, rows: &[usize]) -> Vec<usize> {
    let sub: Vec<f64> = rows
        .iter()
        .flat_map(|&r| data.point(r).iter().copied())
        .collect();
    skyline_of(&sub, data.dim())
        .into_iter()
        .map(|local| rows[local])
        .collect()
}

/// Incremental skyline insertion: given `sky` = the skyline of some row
/// set `S` (all rows of `data`, ascending), updates it in place to the
/// skyline of `S ∪ {row}`. Returns `true` when the skyline changed —
/// `row` joined (pruning any members it dominates) — and `false` when
/// `row` is dominated by a current member and `sky` is untouched.
///
/// Exact by dominance transitivity: if no *skyline* member dominates
/// `row`, no member of `S` does (its dominator's dominator chain ends on
/// the skyline); and every row of `S` dominated by a pruned member is
/// also dominated by `row` itself. Duplicates of a member join (neither
/// dominates the other), preserving the multiset semantics of
/// [`skyline_of`]. Callers maintaining *group* skylines pass the
/// single-group bucket.
pub fn skyline_insert(data: &Dataset, sky: &mut Vec<usize>, row: usize) -> bool {
    let p = data.point(row);
    if sky.iter().any(|&j| dominates(data.point(j), p)) {
        return false;
    }
    sky.retain(|&j| !dominates(p, data.point(j)));
    let pos = sky.partition_point(|&j| j < row);
    sky.insert(pos, row);
    true
}

/// Per-group skyline sizes (the addends of Table 2's "#skylines").
pub fn group_skyline_sizes(data: &Dataset) -> Vec<usize> {
    let mut sizes = vec![0usize; data.num_groups()];
    for &i in &group_skyline_indices(data) {
        sizes[data.group_of(i)] += 1;
    }
    sizes
}

#[cfg(test)]
mod tests {
    use super::*;

    fn naive_skyline(points: &[f64], dim: usize) -> Vec<usize> {
        let n = points.len() / dim;
        (0..n)
            .filter(|&i| {
                let p = &points[i * dim..(i + 1) * dim];
                !(0..n).any(|j| dominates(&points[j * dim..(j + 1) * dim], p))
            })
            .collect()
    }

    #[test]
    fn skyline_of_does_not_panic_on_nan() {
        // Regression: skyline_of is a public API over raw &[f64] and used
        // to panic inside partial_cmp(..).unwrap() sorts when fed NaN.
        // Datasets constructed through Dataset::new never contain NaN, but
        // a raw-slice caller may; the sort must stay total. (NaN rows sort
        // via the total order; the dominance semantics of NaN coordinates
        // are unspecified, only panic-freedom is promised.)
        for dim in [2usize, 3] {
            let mut pts = vec![0.5; 4 * dim];
            pts[dim] = f64::NAN; // second row poisoned
            let _ = skyline_of(&pts, dim); // must not panic
        }
    }

    #[test]
    fn dominance_basics() {
        assert!(dominates(&[1.0, 1.0], &[0.5, 1.0]));
        assert!(!dominates(&[1.0, 1.0], &[1.0, 1.0]));
        assert!(!dominates(&[1.0, 0.0], &[0.0, 1.0]));
    }

    #[test]
    fn skyline_2d_simple() {
        let pts = [1.0, 0.0, 0.0, 1.0, 0.6, 0.6, 0.5, 0.5, 0.2, 0.9];
        let s = skyline_of(&pts, 2);
        assert_eq!(s, vec![0, 1, 2, 4]);
    }

    #[test]
    fn skyline_keeps_duplicates() {
        let pts = [0.7, 0.7, 0.7, 0.7, 0.2, 0.2];
        let s = skyline_of(&pts, 2);
        assert_eq!(s, vec![0, 1]);
        // ...in any dimension
        let pts3 = [0.7, 0.7, 0.7, 0.7, 0.7, 0.7, 0.1, 0.1, 0.1];
        let s3 = skyline_of(&pts3, 3);
        assert_eq!(s3, vec![0, 1]);
    }

    #[test]
    fn skyline_matches_naive_2d_and_4d() {
        let mut x = 0.8_f64;
        let mut pts2 = Vec::new();
        let mut pts4 = Vec::new();
        for _ in 0..300 {
            x = (x * 797.77).fract();
            pts2.push(x);
            for k in 0..4 {
                pts4.push(((x + k as f64) * 313.7).fract());
            }
        }
        let fast2 = skyline_of(&pts2, 2);
        let naive2 = naive_skyline(&pts2, 2);
        assert_eq!(fast2, naive2);
        let fast4 = skyline_of(&pts4, 4);
        let naive4 = naive_skyline(&pts4, 4);
        assert_eq!(fast4, naive4);
    }

    #[test]
    fn group_skyline_superset_of_global() {
        let pts = vec![
            1.0, 0.0, // g0, global skyline
            0.0, 1.0, // g0, global skyline
            0.5, 0.5, // g1, dominated globally? no — (1,0) no, (0,1) no: skyline
            0.4, 0.4, // g1, dominated by (0.5,0.5)
            0.3, 0.2, // g2, dominated, but best of its group
        ];
        let d = Dataset::new("g", 2, pts, vec![0, 0, 1, 1, 2], vec![]).unwrap();
        let global = skyline_indices(&d);
        assert_eq!(global, vec![0, 1, 2]);
        let grouped = group_skyline_indices(&d);
        assert_eq!(grouped, vec![0, 1, 2, 4]);
        assert_eq!(group_skyline_sizes(&d), vec![2, 1, 1]);
    }

    #[test]
    fn skyline_insert_matches_from_scratch_recompute() {
        // Build a single-group dataset row by row; after each insertion the
        // incrementally maintained skyline must equal the full recompute.
        let mut x = 0.43_f64;
        let mut pts = Vec::new();
        for _ in 0..120 * 3 {
            x = (x * 653.29).fract();
            // Quantized coordinates force plenty of ties and duplicates.
            pts.push((x * 8.0).floor() / 8.0);
        }
        let d = Dataset::ungrouped("inc", 3, pts).unwrap();
        let mut sky: Vec<usize> = Vec::new();
        for row in 0..d.len() {
            let before = sky.clone();
            let changed = skyline_insert(&d, &mut sky, row);
            assert_eq!(changed, sky != before, "row {row}");
            let rows: Vec<usize> = (0..=row).collect();
            assert_eq!(sky, bucket_skyline(&d, &rows), "row {row}");
        }
    }

    #[test]
    fn skyline_insert_keeps_duplicates_and_reports_dominated() {
        let d = Dataset::ungrouped("dup", 2, vec![0.7, 0.7, 0.2, 0.2, 0.7, 0.7]).unwrap();
        let mut sky = vec![0];
        assert!(
            !skyline_insert(&d, &mut sky, 1),
            "dominated row must not join"
        );
        assert_eq!(sky, vec![0]);
        assert!(skyline_insert(&d, &mut sky, 2), "exact duplicate joins");
        assert_eq!(sky, vec![0, 2]);
    }

    #[test]
    fn empty_dataset_skyline() {
        let d = Dataset::ungrouped("e", 2, vec![]).unwrap();
        assert!(skyline_indices(&d).is_empty());
        assert!(group_skyline_indices(&d).is_empty());
    }
}
