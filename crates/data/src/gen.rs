//! Synthetic dataset generators.
//!
//! [`anti_correlated`] reimplements the Börzsönyi et al. (ICDE 2001)
//! anti-correlated generator the paper uses for all scalability
//! experiments: points concentrate around the hyperplane `Σᵢ xᵢ = d/2`, so
//! attributes trade off against each other and the skyline contains almost
//! every point (Table 2 reports 0.9n–n). Group labels follow the paper's
//! scheme (Section 5.1): sort points by attribute sum and split into `C`
//! equal-sized quantile groups.

use rand::Rng;

use fairhms_geometry::sphere::standard_normal;

use crate::dataset::Dataset;

/// Generates `n` anti-correlated points in `[0, 1]^d` following the
/// Börzsönyi et al. construction.
///
/// Every coordinate starts at a common plane position `v ~ N(0.5, 0.05)` —
/// the attribute sum `d·v` concentrates tightly around `d/2` — then mass is
/// repeatedly transferred between random coordinate pairs, preserving the
/// sum while spreading points across the plane. Large values in one
/// attribute force small values elsewhere (strong negative correlation),
/// and points with near-equal sums are almost never comparable under
/// dominance, which is what makes anti-correlated skylines huge (Table 2
/// reports per-group skyline unions of 0.9n–n).
pub fn anti_correlated<R: Rng + ?Sized>(n: usize, d: usize, rng: &mut R) -> Vec<f64> {
    assert!(d >= 1);
    let mut out = Vec::with_capacity(n * d);
    let mut x = vec![0.0_f64; d];
    'point: while out.len() < n * d {
        let v = (0.5 + 0.05 * standard_normal(rng)).clamp(0.0, 1.0);
        let l = v.min(1.0 - v);
        x.iter_mut().for_each(|c| *c = v);
        if d >= 2 {
            for _ in 0..d {
                let i = rng.gen_range(0..d);
                let mut j = rng.gen_range(0..d);
                while j == i {
                    j = rng.gen_range(0..d);
                }
                let delta = rng.gen_range(-l..=l);
                x[i] += delta;
                x[j] -= delta;
            }
        }
        for &c in &x {
            if !(0.0..=1.0).contains(&c) {
                continue 'point; // rejection keeps the sum structure intact
            }
        }
        out.extend_from_slice(&x);
    }
    out
}

/// Generates `n` independent uniform points in `[0, 1]^d`.
pub fn uniform<R: Rng + ?Sized>(n: usize, d: usize, rng: &mut R) -> Vec<f64> {
    (0..n * d).map(|_| rng.gen::<f64>()).collect()
}

/// Generates `n` positively correlated points: a shared latent score plus
/// attribute noise, with correlation strength `rho ∈ [0, 1]`.
pub fn correlated<R: Rng + ?Sized>(n: usize, d: usize, rho: f64, rng: &mut R) -> Vec<f64> {
    assert!((0.0..=1.0).contains(&rho));
    let a = rho.sqrt();
    let b = (1.0 - rho).sqrt();
    let mut out = Vec::with_capacity(n * d);
    for _ in 0..n {
        let latent = standard_normal(rng);
        for _ in 0..d {
            let z = a * latent + b * standard_normal(rng);
            // map N(0,1) into (0,1) by the logistic cdf-ish squash
            out.push(1.0 / (1.0 + (-z).exp()));
        }
    }
    out
}

/// Assigns group labels by attribute-sum quantiles: sort points by
/// `Σᵢ p[i]` and split into `C` equal-sized groups (paper Section 5.1).
pub fn groups_by_sum(points: &[f64], d: usize, c: usize) -> Vec<usize> {
    assert!(c >= 1);
    let n = points.len() / d;
    let mut order: Vec<usize> = (0..n).collect();
    let sum = |i: usize| -> f64 { points[i * d..(i + 1) * d].iter().sum() };
    order.sort_by(|&a, &b| sum(a).total_cmp(&sum(b)));
    let mut groups = vec![0usize; n];
    for (rank, &i) in order.iter().enumerate() {
        groups[i] = (rank * c / n).min(c - 1);
    }
    groups
}

/// The paper's default synthetic dataset: anti-correlated points with
/// attribute-sum quantile groups, normalized scale-only.
pub fn anti_correlated_dataset<R: Rng + ?Sized>(
    n: usize,
    d: usize,
    c: usize,
    rng: &mut R,
) -> Dataset {
    let points = anti_correlated(n, d, rng);
    let groups = groups_by_sum(&points, d, c);
    let mut ds = Dataset::new(
        format!("AntiCor_{d}D(n={n},C={c})"),
        d,
        points,
        groups,
        (0..c).map(|g| format!("q{g}")).collect(),
    )
    .expect("generator output is valid");
    ds.normalize();
    ds
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn anti_correlated_shape_and_range() {
        let mut rng = StdRng::seed_from_u64(1);
        let pts = anti_correlated(500, 4, &mut rng);
        assert_eq!(pts.len(), 2000);
        assert!(pts.iter().all(|&x| (0.0..=1.0).contains(&x)));
    }

    #[test]
    fn anti_correlated_negative_correlation_2d() {
        let mut rng = StdRng::seed_from_u64(2);
        let pts = anti_correlated(4000, 2, &mut rng);
        let xs: Vec<f64> = pts.iter().step_by(2).copied().collect();
        let ys: Vec<f64> = pts.iter().skip(1).step_by(2).copied().collect();
        let mx = xs.iter().sum::<f64>() / xs.len() as f64;
        let my = ys.iter().sum::<f64>() / ys.len() as f64;
        let cov: f64 = xs.iter().zip(&ys).map(|(x, y)| (x - mx) * (y - my)).sum();
        assert!(
            cov < 0.0,
            "attributes should be anti-correlated, cov = {cov}"
        );
    }

    #[test]
    fn anti_correlated_has_huge_group_skylines() {
        // Table 2: the union of per-group skylines (groups = attribute-sum
        // quantiles) covers 0.9n–n of the data at the paper's default
        // d = 6; in 2D the fraction is necessarily much smaller (any sum
        // variance makes most same-group points comparable) but still far
        // above the ~ln n of uniform data.
        let mut rng = StdRng::seed_from_u64(3);
        let ds6 = anti_correlated_dataset(2000, 6, 3, &mut rng);
        let sky6 = crate::skyline::group_skyline_indices(&ds6);
        assert!(
            sky6.len() >= 1800,
            "d=6 per-group skyline union unexpectedly small: {}",
            sky6.len()
        );
        let ds2 = anti_correlated_dataset(2000, 2, 3, &mut rng);
        let sky2 = crate::skyline::group_skyline_indices(&ds2);
        assert!(
            (100..2000).contains(&sky2.len()),
            "d=2 per-group skyline union out of range: {}",
            sky2.len()
        );
    }

    #[test]
    fn uniform_in_range() {
        let mut rng = StdRng::seed_from_u64(4);
        let pts = uniform(100, 3, &mut rng);
        assert_eq!(pts.len(), 300);
        assert!(pts.iter().all(|&x| (0.0..=1.0).contains(&x)));
    }

    #[test]
    fn correlated_positive_correlation() {
        let mut rng = StdRng::seed_from_u64(5);
        let pts = correlated(4000, 2, 0.8, &mut rng);
        let xs: Vec<f64> = pts.iter().step_by(2).copied().collect();
        let ys: Vec<f64> = pts.iter().skip(1).step_by(2).copied().collect();
        let mx = xs.iter().sum::<f64>() / xs.len() as f64;
        let my = ys.iter().sum::<f64>() / ys.len() as f64;
        let cov: f64 = xs.iter().zip(&ys).map(|(x, y)| (x - mx) * (y - my)).sum();
        assert!(cov > 0.0, "attributes should be correlated, cov = {cov}");
    }

    #[test]
    fn groups_by_sum_equal_sizes() {
        let mut rng = StdRng::seed_from_u64(6);
        let pts = uniform(999, 2, &mut rng);
        let g = groups_by_sum(&pts, 2, 3);
        let mut sizes = [0usize; 3];
        for &x in &g {
            sizes[x] += 1;
        }
        assert_eq!(sizes, [333, 333, 333]);
    }

    #[test]
    fn dataset_constructor_normalizes() {
        let mut rng = StdRng::seed_from_u64(7);
        let ds = anti_correlated_dataset(200, 3, 4, &mut rng);
        assert_eq!(ds.len(), 200);
        assert_eq!(ds.num_groups(), 4);
        // scale-only normalization: max of each attribute is 1
        for j in 0..3 {
            let maxj = (0..ds.len()).map(|i| ds.point(i)[j]).fold(0.0, f64::max);
            assert!((maxj - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn generators_deterministic_with_seed() {
        let a = anti_correlated(50, 3, &mut StdRng::seed_from_u64(9));
        let b = anti_correlated(50, 3, &mut StdRng::seed_from_u64(9));
        assert_eq!(a, b);
    }
}
