//! Simulated stand-ins for the paper's real datasets.
//!
//! The original evaluation uses four real datasets (Lawschs, Adult, Compas,
//! Credit) that cannot be fetched in this offline environment. Each
//! simulator below reproduces the characteristics the FairHMS experiments
//! actually depend on — documented per dataset in DESIGN.md §4:
//!
//! * the published row count `n` and numeric dimensionality `d` (Table 2);
//! * the group structure: which categorical attributes exist, how many
//!   values each has, their (skewed) proportions, and systematic score
//!   advantages for some groups — the skew is what makes *unfair* baselines
//!   over-represent advantaged groups in Figure 3;
//! * the approximate per-group skyline scale (Table 2's "#skylines"),
//!   controlled through inter-attribute correlation.
//!
//! The simulators draw from a shared latent-factor model: each row samples
//! its categorical values, receives a latent quality `a ~ N(μ_cats, 1)`,
//! and each numeric attribute is `sigmoid(√ρ·a + √(1−ρ)·ε)`. Higher `ρ`
//! means more correlated attributes and smaller skylines.
//!
//! [`lsac_example`] is the literal 8-applicant LSAC sample of Table 1,
//! against which the paper's Example 2.2 constants are pinned in tests.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use fairhms_geometry::sphere::standard_normal;

use crate::dataset::Table;

/// One categorical attribute in a simulator spec.
struct CatSpec {
    name: &'static str,
    /// `(value label, proportion, latent advantage)` — proportions need not
    /// be normalized.
    values: &'static [(&'static str, f64, f64)],
}

/// Latent-factor simulator shared by all real-dataset stand-ins.
fn simulate(name: &str, n: usize, d: usize, rho: f64, cats: &[CatSpec], seed: u64) -> Table {
    let mut rng = StdRng::seed_from_u64(seed);
    let a = rho.sqrt();
    let b = (1.0 - rho).sqrt();
    let mut points = Vec::with_capacity(n * d);
    let mut cat_vals: Vec<Vec<usize>> = vec![Vec::with_capacity(n); cats.len()];
    for spec in cats {
        debug_assert!(!spec.values.is_empty());
    }
    let totals: Vec<f64> = cats
        .iter()
        .map(|c| c.values.iter().map(|v| v.1).sum())
        .collect();
    for _ in 0..n {
        let mut advantage = 0.0;
        for (ci, spec) in cats.iter().enumerate() {
            let mut r = rng.gen::<f64>() * totals[ci];
            let mut chosen = spec.values.len() - 1;
            for (vi, &(_, prop, _)) in spec.values.iter().enumerate() {
                if r < prop {
                    chosen = vi;
                    break;
                }
                r -= prop;
            }
            advantage += spec.values[chosen].2;
            cat_vals[ci].push(chosen);
        }
        let latent = standard_normal(&mut rng) + advantage;
        for _ in 0..d {
            let z = a * latent + b * standard_normal(&mut rng);
            points.push(1.0 / (1.0 + (-z).exp()));
        }
    }
    Table {
        name: name.to_string(),
        dim: d,
        points,
        cats: cats
            .iter()
            .zip(cat_vals)
            .map(|(spec, vals)| {
                (
                    spec.name.to_string(),
                    vals,
                    spec.values.iter().map(|v| v.0.to_string()).collect(),
                )
            })
            .collect(),
    }
}

/// Lawschs stand-in: 65,494 law students, 2 numeric attributes (LSAT, GPA),
/// grouped by `gender` (2) or `race` (5). Correlated attributes give the
/// tiny per-group skylines of Table 2 (#sky 19 / 42).
pub fn lawschs(seed: u64) -> Table {
    simulate(
        "Lawschs",
        65_494,
        2,
        0.35,
        &[
            CatSpec {
                name: "gender",
                values: &[("male", 0.56, 0.25), ("female", 0.44, 0.0)],
            },
            CatSpec {
                name: "race",
                values: &[
                    ("white", 0.84, 0.3),
                    ("black", 0.06, 0.0),
                    ("hispanic", 0.05, 0.05),
                    ("asian", 0.03, 0.25),
                    ("other", 0.02, 0.1),
                ],
            },
        ],
        seed,
    )
}

/// Adult stand-in: 32,561 individuals, 5 numeric attributes, grouped by
/// `gender` (2), `race` (5), or both (10).
pub fn adult(seed: u64) -> Table {
    simulate(
        "Adult",
        32_561,
        5,
        0.58,
        &[
            CatSpec {
                name: "gender",
                values: &[("male", 0.67, 0.3), ("female", 0.33, 0.0)],
            },
            CatSpec {
                name: "race",
                values: &[
                    ("white", 0.855, 0.25),
                    ("black", 0.096, 0.0),
                    ("asian", 0.031, 0.3),
                    ("amind", 0.01, 0.05),
                    ("other", 0.008, 0.1),
                ],
            },
        ],
        seed,
    )
}

/// Compas stand-in: 4,743 applicants, 9 numeric attributes, grouped by
/// `gender` (2), `isRecid` (2), or both (4). `d = 9 > 7` reproduces the
/// regime where DMM exhausts memory and is omitted (paper Section 5.2).
pub fn compas(seed: u64) -> Table {
    simulate(
        "Compas",
        4_743,
        9,
        0.42,
        &[
            CatSpec {
                name: "gender",
                values: &[("male", 0.78, 0.2), ("female", 0.22, 0.0)],
            },
            CatSpec {
                name: "isRecid",
                values: &[("no", 0.66, 0.15), ("yes", 0.34, 0.0)],
            },
        ],
        seed,
    )
}

/// Credit stand-in: 1,000 German-credit rows, 7 numeric attributes, grouped
/// by `housing` (3), `job` (4), or `working_years` (5).
pub fn credit(seed: u64) -> Table {
    simulate(
        "Credit",
        1_000,
        7,
        0.38,
        &[
            CatSpec {
                name: "housing",
                values: &[("own", 0.71, 0.2), ("rent", 0.18, 0.0), ("free", 0.11, 0.1)],
            },
            CatSpec {
                name: "job",
                values: &[
                    ("skilled", 0.63, 0.15),
                    ("unskilled", 0.20, 0.0),
                    ("management", 0.15, 0.3),
                    ("unemployed", 0.02, -0.1),
                ],
            },
            CatSpec {
                name: "working_years",
                values: &[
                    ("lt1", 0.17, -0.1),
                    ("1to4", 0.34, 0.0),
                    ("4to7", 0.17, 0.1),
                    ("gt7", 0.25, 0.2),
                    ("none", 0.07, -0.2),
                ],
            },
        ],
        seed,
    )
}

/// The literal LSAC sample of Table 1: eight applicants with raw LSAT
/// (140–180) and GPA (0–4) scores plus gender and race.
///
/// With scale-only normalization this reproduces the paper's Example 2.2
/// exactly: the optimal HMS of size 2 is `{a4, a5}` with `mhr = 0.9846`,
/// while the gender-fair optimum (one male, one female) is `{a5, a8}` with
/// `mhr = 0.9834`; the size-3 HMS `{a4, a5, a7}` reaches `0.9984`.
pub fn lsac_example() -> Table {
    // rows a1..a8: (gender, race, LSAT, GPA)
    let rows: [(usize, usize, f64, f64); 8] = [
        (1, 0, 164.0, 3.31), // a1 female black
        (0, 0, 163.0, 3.55), // a2 male black
        (1, 1, 165.0, 3.09), // a3 female white
        (0, 1, 160.0, 3.83), // a4 male white
        (0, 2, 170.0, 2.79), // a5 male hispanic
        (1, 2, 161.0, 3.69), // a6 female hispanic
        (0, 3, 153.0, 3.89), // a7 male asian
        (1, 3, 156.0, 3.87), // a8 female asian
    ];
    let mut points = Vec::with_capacity(16);
    let mut gender = Vec::with_capacity(8);
    let mut race = Vec::with_capacity(8);
    for &(g, r, lsat, gpa) in &rows {
        points.push(lsat);
        points.push(gpa);
        gender.push(g);
        race.push(r);
    }
    Table {
        name: "LSAC-Table1".to_string(),
        dim: 2,
        points,
        cats: vec![
            (
                "gender".to_string(),
                gender,
                vec!["male".to_string(), "female".to_string()],
            ),
            (
                "race".to_string(),
                race,
                vec![
                    "black".to_string(),
                    "white".to_string(),
                    "hispanic".to_string(),
                    "asian".to_string(),
                ],
            ),
        ],
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::skyline::group_skyline_indices;

    #[test]
    fn lsac_example_matches_table1() {
        let t = lsac_example();
        assert_eq!(t.len(), 8);
        assert_eq!(t.dim, 2);
        let ds = t.dataset(&["gender"]).unwrap();
        assert_eq!(ds.num_groups(), 2);
        // a5 is male (group of row 4 == group of row 1 == male)
        assert_eq!(ds.group_of(4), ds.group_of(1));
        assert_ne!(ds.group_of(4), ds.group_of(7));
        let by_both = t.dataset(&["gender", "race"]).unwrap();
        assert_eq!(by_both.num_groups(), 8);
    }

    #[test]
    fn simulators_match_published_shapes() {
        let lw = lawschs(1);
        assert_eq!(lw.len(), 65_494);
        assert_eq!(lw.dim, 2);
        let ad = adult(1);
        assert_eq!(ad.len(), 32_561);
        assert_eq!(ad.dim, 5);
        let cp = compas(1);
        assert_eq!(cp.len(), 4_743);
        assert_eq!(cp.dim, 9);
        let cr = credit(1);
        assert_eq!(cr.len(), 1_000);
        assert_eq!(cr.dim, 7);
    }

    #[test]
    fn group_counts_match_table2() {
        assert_eq!(lawschs(1).dataset(&["gender"]).unwrap().num_groups(), 2);
        assert_eq!(lawschs(1).dataset(&["race"]).unwrap().num_groups(), 5);
        assert_eq!(
            adult(1).dataset(&["gender", "race"]).unwrap().num_groups(),
            10
        );
        assert_eq!(
            compas(1)
                .dataset(&["gender", "isRecid"])
                .unwrap()
                .num_groups(),
            4
        );
        assert_eq!(
            credit(1).dataset(&["working_years"]).unwrap().num_groups(),
            5
        );
    }

    #[test]
    fn lawschs_skyline_scale_close_to_table2() {
        let mut ds = lawschs(1).dataset(&["gender"]).unwrap();
        ds.normalize();
        let sky = group_skyline_indices(&ds);
        // Table 2 reports 19; accept the right order of magnitude.
        assert!(
            (8..=80).contains(&sky.len()),
            "lawschs gender #skylines = {}",
            sky.len()
        );
    }

    #[test]
    fn credit_skyline_scale_close_to_table2() {
        let mut ds = credit(1).dataset(&["job"]).unwrap();
        ds.normalize();
        let sky = group_skyline_indices(&ds);
        // Table 2 reports 126.
        assert!(
            (50..=320).contains(&sky.len()),
            "credit job #skylines = {}",
            sky.len()
        );
    }

    #[test]
    fn advantaged_groups_dominate_skylines() {
        // The male group should hold a disproportionate share of the global
        // skyline — the effect Figure 3 relies on.
        let mut ds = adult(1).dataset(&["gender"]).unwrap();
        ds.normalize();
        let sky = crate::skyline::skyline_indices(&ds);
        let male = ds.group_names().iter().position(|s| s == "male").unwrap();
        let male_share =
            sky.iter().filter(|&&i| ds.group_of(i) == male).count() as f64 / sky.len() as f64;
        assert!(
            male_share > 0.7,
            "advantaged group share of skyline = {male_share}"
        );
    }

    #[test]
    fn deterministic_per_seed() {
        assert_eq!(credit(7).points, credit(7).points);
        assert_ne!(credit(7).points, credit(8).points);
    }
}
