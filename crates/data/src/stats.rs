//! Dataset statistics (regenerates Table 2 of the paper).

use crate::dataset::Dataset;
use crate::skyline::group_skyline_sizes;

/// Summary statistics of a grouped dataset.
#[derive(Debug, Clone)]
pub struct DatasetStats {
    /// Dataset label (name + grouping attribute).
    pub name: String,
    /// Dimensionality.
    pub d: usize,
    /// Number of points.
    pub n: usize,
    /// Number of groups.
    pub c: usize,
    /// `|D_c|` per group.
    pub group_sizes: Vec<usize>,
    /// Per-group skyline sizes.
    pub group_skylines: Vec<usize>,
    /// Sum of per-group skyline sizes — Table 2's "#skylines".
    pub skylines_total: usize,
}

impl DatasetStats {
    /// Computes statistics for `data`.
    pub fn compute(data: &Dataset) -> Self {
        let group_skylines = group_skyline_sizes(data);
        let skylines_total = group_skylines.iter().sum();
        Self {
            name: data.name().to_string(),
            d: data.dim(),
            n: data.len(),
            c: data.num_groups(),
            group_sizes: data.group_sizes(),
            group_skylines,
            skylines_total,
        }
    }

    /// One row of a Table-2-style report.
    pub fn table_row(&self) -> String {
        format!(
            "{:<28} d={:<3} n={:<8} C={:<3} #skylines={}",
            self.name, self.d, self.n, self.c, self.skylines_total
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stats_of_small_dataset() {
        let d = Dataset::new(
            "s",
            2,
            vec![1.0, 0.0, 0.0, 1.0, 0.4, 0.4, 0.2, 0.1],
            vec![0, 0, 1, 1],
            vec!["a".into(), "b".into()],
        )
        .unwrap();
        let st = DatasetStats::compute(&d);
        assert_eq!(st.n, 4);
        assert_eq!(st.c, 2);
        assert_eq!(st.group_sizes, vec![2, 2]);
        // group a: both on its skyline; group b: only (0.4, 0.4)
        assert_eq!(st.group_skylines, vec![2, 1]);
        assert_eq!(st.skylines_total, 3);
        assert!(st.table_row().contains("#skylines=3"));
    }
}
