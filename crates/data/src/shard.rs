//! Deterministic dataset partitioning for sharded preparation.
//!
//! The FairHMS pipeline (normalize → group-skyline reduction → fair solve)
//! is embarrassingly partitionable: the union of per-group skylines of a
//! dataset equals the group-skyline reduction of the union of per-shard
//! group skylines, because dominance is transitive — every dominated point
//! is dominated by some member of its own shard's skyline. A [`ShardPlan`]
//! partitions the rows so that the expensive per-shard skyline passes can
//! run in parallel, and [`merge_shard_skylines`] performs the final
//! reduction; the merged row set is **bit-identical** to the unsharded
//! [`crate::skyline::group_skyline_indices`] output (pinned by
//! `tests/shard_properties.rs`).
//!
//! Plans carry row *indices* only — shards are views into the one shared
//! point matrix, never copies of it.

use crate::dataset::Dataset;
use crate::skyline::group_skyline_of_rows;

/// How rows are assigned to shards.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PartitionStrategy {
    /// Row `i` goes to shard `i mod s`. Cheapest; group balance is only
    /// statistical.
    RoundRobin,
    /// Rows are dealt round-robin *within each group*, so every group with
    /// at least `s` members is represented in every shard (a group with
    /// fewer members lands in exactly `|D_c|` shards). This keeps each
    /// shard's per-group skyline pass meaningful and mirrors the matroid
    /// view of per-group quotas under partitioning.
    GroupStratified,
}

impl PartitionStrategy {
    /// Stable lowercase name (wire/CLI spelling).
    pub fn name(&self) -> &'static str {
        match self {
            PartitionStrategy::RoundRobin => "roundrobin",
            PartitionStrategy::GroupStratified => "stratified",
        }
    }

    /// Parses a CLI/wire spelling (`roundrobin`/`rr`, `stratified`).
    pub fn parse(s: &str) -> Option<Self> {
        match s.to_ascii_lowercase().as_str() {
            "roundrobin" | "round-robin" | "rr" => Some(PartitionStrategy::RoundRobin),
            "stratified" | "group-stratified" | "groupstratified" => {
                Some(PartitionStrategy::GroupStratified)
            }
            _ => None,
        }
    }
}

impl std::fmt::Display for PartitionStrategy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// A deterministic partition of a dataset's rows into shards.
///
/// Invariants (pinned by the property tests):
/// - the shards are disjoint and their union is `0..n`;
/// - every shard's row list is sorted ascending;
/// - the effective shard count is `min(requested, n)` (never more shards
///   than rows, so no shard is empty), with a floor of 1 — `n <
/// requested` degrades gracefully instead of planning empty work.
#[derive(Debug, Clone)]
pub struct ShardPlan {
    strategy: PartitionStrategy,
    requested: usize,
    assignments: Vec<Vec<usize>>,
}

impl ShardPlan {
    /// Partitions `data`'s rows into (at most) `shards` shards.
    pub fn build(data: &Dataset, shards: usize, strategy: PartitionStrategy) -> ShardPlan {
        let n = data.len();
        let requested = shards.max(1);
        let s = requested.min(n).max(1);
        let mut assignments: Vec<Vec<usize>> = vec![Vec::with_capacity(n.div_ceil(s)); s];
        match strategy {
            PartitionStrategy::RoundRobin => {
                for i in 0..n {
                    assignments[i % s].push(i);
                }
            }
            PartitionStrategy::GroupStratified => {
                // Deal each group's rows (ascending) round-robin, starting
                // where the previous group's deal left off (cumulative
                // group-size offsets). Equivalent to round-robin over the
                // rows sorted by group: shard sizes stay balanced (differ
                // by at most 1) even when every group is tiny, and a group
                // with ≥ s members still hits every shard.
                let sizes = data.group_sizes();
                let mut next = vec![0usize; data.num_groups()];
                let mut offset = 0usize;
                for (g, &sz) in sizes.iter().enumerate() {
                    next[g] = offset;
                    offset += sz;
                }
                for i in 0..n {
                    let g = data.group_of(i);
                    assignments[next[g] % s].push(i);
                    next[g] += 1;
                }
                for rows in &mut assignments {
                    rows.sort_unstable();
                }
            }
        }
        ShardPlan {
            strategy,
            requested,
            assignments,
        }
    }

    /// The strategy the plan was built with.
    pub fn strategy(&self) -> PartitionStrategy {
        self.strategy
    }

    /// The shard count the caller asked for (before clamping to `n`).
    pub fn requested_shards(&self) -> usize {
        self.requested
    }

    /// Effective shard count (`min(requested, n)`, at least 1).
    pub fn num_shards(&self) -> usize {
        self.assignments.len()
    }

    /// Global row ids of shard `i`, sorted ascending.
    pub fn rows(&self, i: usize) -> &[usize] {
        &self.assignments[i]
    }

    /// All shard row lists.
    pub fn assignments(&self) -> &[Vec<usize>] {
        &self.assignments
    }

    /// Consumes the plan, yielding the shard row lists — for callers that
    /// hand each shard's rows to a worker without re-copying them.
    pub fn into_assignments(self) -> Vec<Vec<usize>> {
        self.assignments
    }

    /// True when the plan is a single shard (the unsharded fast path).
    pub fn is_trivial(&self) -> bool {
        self.assignments.len() == 1
    }
}

/// Final merge stage: reduces the union of per-shard group skylines to the
/// exact global group skyline.
///
/// `shard_skylines[i]` must be the group skyline of shard `i`'s rows
/// (global ids, as produced by [`group_skyline_of_rows`]). The result is
/// sorted ascending and equals `group_skyline_indices(data)` exactly: a
/// globally surviving point survives its shard (fewer competitors), and a
/// globally dominated point is dominated by a *shard-skyline* member of
/// its group (dominance is transitive), so the second reduction removes
/// it.
pub fn merge_shard_skylines<S: AsRef<[usize]>>(data: &Dataset, shard_skylines: &[S]) -> Vec<usize> {
    if shard_skylines.len() == 1 {
        return shard_skylines[0].as_ref().to_vec();
    }
    let mut union: Vec<usize> = shard_skylines
        .iter()
        .flat_map(|s| s.as_ref().iter().copied())
        .collect();
    union.sort_unstable();
    group_skyline_of_rows(data, &union)
}

/// Upper bound on worker threads spawned by
/// [`merge_shard_skylines_parallel`]. Group counts come from user data
/// (`Dataset::new` infers one group per distinct label), so a
/// high-cardinality group column must not translate into one thread per
/// group — workers pull group buckets from a shared queue instead.
pub const MAX_MERGE_THREADS: usize = 64;

/// Rows per divide-and-conquer chunk in
/// [`merge_shard_skylines_parallel`]. A skewed group distribution (in the
/// extreme, one group holding the whole union) must not serialize the
/// merge onto one thread, so buckets larger than this are split into
/// chunks reduced in parallel first. 4096 rows keeps per-chunk work in
/// the hundreds of microseconds — large enough to amortize task pulls,
/// small enough that the costliest group fans out across all workers.
pub const MERGE_CHUNK_ROWS: usize = 4096;

/// [`merge_shard_skylines`] with the per-group reduction passes run on
/// scoped std threads — at most [`MAX_MERGE_THREADS`] workers draining a
/// shared task queue. Groups are independent in a group skyline, so the
/// merge parallelizes across them for free; *within* a group the merge
/// divides and conquers: buckets are split into [`MERGE_CHUNK_ROWS`]-row
/// chunks, each chunk's skyline is reduced in parallel, and multi-chunk
/// buckets get a second reduction over the (much smaller) chunk-survivor
/// union. Exact by dominance transitivity — `skyline(A ∪ B) =
/// skyline(skyline(A) ∪ skyline(B))`, the same lemma that justifies
/// sharding itself — so wall-time is no longer bound by the costliest
/// single group. Output is identical to the sequential merge: per-group
/// survivors don't depend on scheduling, and the final sort fixes the
/// order.
pub fn merge_shard_skylines_parallel<S: AsRef<[usize]>>(
    data: &Dataset,
    shard_skylines: &[S],
) -> Vec<usize> {
    merge_shard_skylines_chunked(data, shard_skylines, MERGE_CHUNK_ROWS)
}

/// [`merge_shard_skylines_parallel`] with an explicit chunk size (exposed
/// so tests can force multi-chunk buckets on small data).
pub fn merge_shard_skylines_chunked<S: AsRef<[usize]>>(
    data: &Dataset,
    shard_skylines: &[S],
    chunk_rows: usize,
) -> Vec<usize> {
    if shard_skylines.len() == 1 {
        return shard_skylines[0].as_ref().to_vec();
    }
    let chunk_rows = chunk_rows.max(1);
    let mut union: Vec<usize> = shard_skylines
        .iter()
        .flat_map(|s| s.as_ref().iter().copied())
        .collect();
    union.sort_unstable();
    let buckets = crate::skyline::bucket_rows_by_group(data, &union);
    let buckets: Vec<&Vec<usize>> = buckets.iter().filter(|b| !b.is_empty()).collect();

    // Round 1 task list: contiguous chunks of each bucket. Chunks inherit
    // the bucket's ascending row order, so per-bucket reassembly in task
    // order is ascending again.
    let tasks: Vec<(usize, &[usize])> = buckets
        .iter()
        .enumerate()
        .flat_map(|(bi, b)| b.chunks(chunk_rows).map(move |c| (bi, c)))
        .collect();
    if tasks.len() <= 1 {
        let mut out: Vec<usize> = buckets
            .iter()
            .flat_map(|b| crate::skyline::bucket_skyline(data, b))
            .collect();
        out.sort_unstable();
        return out;
    }
    let chunk_survivors = run_tasks(data, &tasks);

    // Reassemble chunk survivors per bucket (ascending: tasks are emitted
    // bucket-major in chunk order). Single-chunk buckets are done — their
    // chunk *is* the bucket; multi-chunk buckets need a second reduction
    // over the survivor union.
    let mut per_bucket: Vec<Vec<usize>> = vec![Vec::new(); buckets.len()];
    let mut chunk_count = vec![0usize; buckets.len()];
    for ((bi, _), survivors) in tasks.iter().zip(&chunk_survivors) {
        per_bucket[*bi].extend_from_slice(survivors);
        chunk_count[*bi] += 1;
    }
    let reduced: Vec<(usize, Vec<usize>)> = {
        let reduce_tasks: Vec<(usize, &[usize])> = per_bucket
            .iter()
            .enumerate()
            .filter(|(bi, _)| chunk_count[*bi] > 1)
            .map(|(bi, rows)| (bi, rows.as_slice()))
            .collect();
        let results = run_tasks(data, &reduce_tasks);
        reduce_tasks
            .iter()
            .map(|(bi, _)| *bi)
            .zip(results)
            .collect()
    };
    for (bi, survivors) in reduced {
        per_bucket[bi] = survivors;
    }

    let mut out: Vec<usize> = per_bucket.into_iter().flatten().collect();
    out.sort_unstable();
    out
}

/// Runs `bucket_skyline` over every `(bucket, rows)` task on up to
/// [`MAX_MERGE_THREADS`] scoped worker threads pulling from a shared
/// atomic cursor; returns the survivors of task `i` at index `i`.
fn run_tasks(data: &Dataset, tasks: &[(usize, &[usize])]) -> Vec<Vec<usize>> {
    let workers = tasks.len().min(MAX_MERGE_THREADS);
    if workers <= 1 {
        return tasks
            .iter()
            .map(|(_, rows)| crate::skyline::bucket_skyline(data, rows))
            .collect();
    }
    let next = std::sync::atomic::AtomicUsize::new(0);
    let mut out: Vec<Vec<usize>> = vec![Vec::new(); tasks.len()];
    std::thread::scope(|s| {
        let next = &next;
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                s.spawn(move || {
                    let mut acc: Vec<(usize, Vec<usize>)> = Vec::new();
                    loop {
                        // ordering: work-claim index; fetch_add uniqueness
                        // is all that is needed, shards are disjoint.
                        let i = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                        let Some((_, rows)) = tasks.get(i) else { break };
                        acc.push((i, crate::skyline::bucket_skyline(data, rows)));
                    }
                    acc
                })
            })
            .collect();
        for h in handles {
            for (i, survivors) in h.join().unwrap() {
                out[i] = survivors;
            }
        }
    });
    out
}

/// Sequential reference for the sharded pipeline: per-shard group
/// skylines, then [`merge_shard_skylines`]. The serving catalog runs the
/// per-shard passes on threads; this function is the single-threaded
/// oracle the equivalence tests compare both paths against.
pub fn sharded_group_skyline(data: &Dataset, plan: &ShardPlan) -> Vec<usize> {
    let per_shard: Vec<Vec<usize>> = plan
        .assignments()
        .iter()
        .map(|rows| group_skyline_of_rows(data, rows))
        .collect();
    merge_shard_skylines(data, &per_shard)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::skyline::group_skyline_indices;

    fn toy(n: usize, groups: Vec<usize>) -> Dataset {
        // Deterministic pseudo-random coordinates in 2D.
        let mut x = 0.37_f64;
        let mut pts = Vec::with_capacity(n * 2);
        for _ in 0..n * 2 {
            x = (x * 997.13).fract();
            pts.push(x);
        }
        Dataset::new("toy", 2, pts, groups, vec![]).unwrap()
    }

    #[test]
    fn round_robin_partitions_all_rows() {
        let d = toy(10, vec![0; 10]);
        let plan = ShardPlan::build(&d, 3, PartitionStrategy::RoundRobin);
        assert_eq!(plan.num_shards(), 3);
        assert_eq!(plan.rows(0), &[0, 3, 6, 9]);
        assert_eq!(plan.rows(1), &[1, 4, 7]);
        assert_eq!(plan.rows(2), &[2, 5, 8]);
    }

    #[test]
    fn stratified_keeps_groups_in_every_shard() {
        // 3 groups of 4 rows each, interleaved labels.
        let groups = vec![0, 1, 2, 0, 1, 2, 0, 1, 2, 0, 1, 2];
        let d = toy(12, groups);
        let plan = ShardPlan::build(&d, 4, PartitionStrategy::GroupStratified);
        for s in 0..plan.num_shards() {
            for g in 0..3 {
                assert!(
                    plan.rows(s).iter().any(|&r| d.group_of(r) == g),
                    "group {g} missing from shard {s}"
                );
            }
        }
    }

    #[test]
    fn small_group_lands_in_its_size_many_shards() {
        // Group 1 has a single member: it can appear in exactly 1 shard.
        let groups = vec![0, 0, 0, 0, 0, 0, 0, 1];
        let d = toy(8, groups);
        let plan = ShardPlan::build(&d, 4, PartitionStrategy::GroupStratified);
        let holding: Vec<usize> = (0..plan.num_shards())
            .filter(|&s| plan.rows(s).contains(&7))
            .collect();
        assert_eq!(holding.len(), 1);
    }

    #[test]
    fn fewer_rows_than_shards_degrades_gracefully() {
        let d = toy(2, vec![0, 1]);
        for strat in [
            PartitionStrategy::RoundRobin,
            PartitionStrategy::GroupStratified,
        ] {
            let plan = ShardPlan::build(&d, 7, strat);
            assert_eq!(plan.requested_shards(), 7);
            assert_eq!(plan.num_shards(), 2, "{strat}");
            assert!(plan.assignments().iter().all(|s| !s.is_empty()));
            assert_eq!(sharded_group_skyline(&d, &plan), group_skyline_indices(&d));
        }
    }

    #[test]
    fn empty_dataset_plans_one_empty_shard() {
        let d = Dataset::ungrouped("e", 2, vec![]).unwrap();
        let plan = ShardPlan::build(&d, 4, PartitionStrategy::RoundRobin);
        assert_eq!(plan.num_shards(), 1);
        assert!(plan.rows(0).is_empty());
        assert!(sharded_group_skyline(&d, &plan).is_empty());
    }

    #[test]
    fn merge_matches_unsharded_on_toy_data() {
        let groups = (0..40).map(|i| i % 3).collect();
        let d = toy(40, groups);
        for shards in [1usize, 2, 3, 7] {
            for strat in [
                PartitionStrategy::RoundRobin,
                PartitionStrategy::GroupStratified,
            ] {
                let plan = ShardPlan::build(&d, shards, strat);
                assert_eq!(
                    sharded_group_skyline(&d, &plan),
                    group_skyline_indices(&d),
                    "shards={shards} strategy={strat}"
                );
            }
        }
    }

    #[test]
    fn parallel_merge_matches_sequential() {
        let groups = (0..60).map(|i| i % 4).collect();
        let d = toy(60, groups);
        for shards in [2usize, 3, 7] {
            let plan = ShardPlan::build(&d, shards, PartitionStrategy::GroupStratified);
            let per_shard: Vec<Vec<usize>> = plan
                .assignments()
                .iter()
                .map(|rows| group_skyline_of_rows(&d, rows))
                .collect();
            assert_eq!(
                merge_shard_skylines_parallel(&d, &per_shard),
                merge_shard_skylines(&d, &per_shard),
                "shards={shards}"
            );
        }
    }

    #[test]
    fn chunked_merge_matches_sequential_even_with_one_huge_group() {
        // A single group concentrates the whole union into one bucket —
        // exactly the skew the divide-and-conquer pass exists for. Tiny
        // chunk sizes force multi-chunk buckets and the second reduction.
        for groups in [vec![0; 90], (0..90).map(|i| i % 4).collect::<Vec<_>>()] {
            let d = toy(90, groups);
            let plan = ShardPlan::build(&d, 3, PartitionStrategy::RoundRobin);
            let per_shard: Vec<Vec<usize>> = plan
                .assignments()
                .iter()
                .map(|rows| group_skyline_of_rows(&d, rows))
                .collect();
            let expect = merge_shard_skylines(&d, &per_shard);
            for chunk in [1usize, 2, 5, 7, 64, MERGE_CHUNK_ROWS] {
                assert_eq!(
                    merge_shard_skylines_chunked(&d, &per_shard, chunk),
                    expect,
                    "chunk={chunk}"
                );
            }
        }
    }

    #[test]
    fn strategy_parse_round_trips() {
        for strat in [
            PartitionStrategy::RoundRobin,
            PartitionStrategy::GroupStratified,
        ] {
            assert_eq!(PartitionStrategy::parse(strat.name()), Some(strat));
        }
        assert_eq!(
            PartitionStrategy::parse("rr"),
            Some(PartitionStrategy::RoundRobin)
        );
        assert_eq!(PartitionStrategy::parse("nope"), None);
    }
}
