//! Dataset substrate for FairHMS.
//!
//! * [`dataset`] — the [`Dataset`] type: a dense numeric matrix with group
//!   labels and scale-only normalization (dividing each attribute by its
//!   maximum; shifting is forbidden because minimum happiness ratios are
//!   invariant under per-attribute scaling but *not* under translation).
//! * [`skyline`] — dominance and skyline computation; the paper precomputes
//!   the union of per-group skylines as the input to every algorithm.
//! * [`gen`] — synthetic generators, including the Börzsönyi et al.
//!   anti-correlated generator used throughout the paper's evaluation, and
//!   the paper's group-assignment scheme (attribute-sum quantiles).
//! * [`realsim`] — simulators standing in for the paper's real datasets
//!   (Lawschs, Adult, Compas, Credit), which cannot be downloaded in this
//!   environment. Each matches the published n, d, group structure, and
//!   approximate skyline scale (see DESIGN.md §4), plus the literal 8-row
//!   LSAC example of Table 1.
//! * [`shard`] — deterministic row partitioning ([`ShardPlan`]) and the
//!   merge stage that makes sharded group-skyline preparation bit-identical
//!   to the unsharded pipeline.
//! * [`csv`] — minimal CSV import/export for datasets and result series.
//! * [`stats`] — dataset statistics used to regenerate Table 2.

pub mod csv;
pub mod dataset;
pub mod gen;
pub mod realsim;
pub mod shard;
pub mod skyline;
pub mod stats;

pub use dataset::{deep_clone_count, Dataset, DatasetError, Table};
pub use shard::{PartitionStrategy, ShardPlan};
