//! The [`Dataset`] type and the multi-grouping [`Table`] wrapper.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, OnceLock};

use fairhms_geometry::soa::{kernel_backend, KernelBackend, SoaMatrix};
use fairhms_geometry::vecmath;

/// Process-wide count of [`Dataset`] deep copies (`Clone::clone` calls).
///
/// The serving stack shares prepared datasets through `Arc<Dataset>`, so a
/// query must never deep-copy the point matrix; this counter is the probe
/// the zero-copy regression tests assert on. Derived datasets built by
/// [`Dataset::subset`] / [`Dataset::project`] are *not* counted — they are
/// new (usually smaller) datasets, not copies of an existing one.
static DEEP_CLONES: AtomicUsize = AtomicUsize::new(0);

/// Number of [`Dataset`] deep copies performed by this process so far.
///
/// Monotone; sample it before and after a code path to assert the path
/// performed no full-matrix copies.
pub fn deep_clone_count() -> usize {
    // ordering: test probe; SeqCst so before/after samples taken around
    // a code path observe every clone from every thread, exactly.
    DEEP_CLONES.load(Ordering::SeqCst)
}

/// Errors raised by dataset construction and manipulation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DatasetError {
    /// The flat point buffer length is not a multiple of the dimension.
    RaggedMatrix,
    /// The group label vector length differs from the number of points.
    GroupLengthMismatch,
    /// A group label is out of range.
    GroupOutOfRange {
        /// Offending row.
        row: usize,
    },
    /// A coordinate is negative or non-finite.
    InvalidCoordinate {
        /// Offending row.
        row: usize,
        /// Offending column.
        col: usize,
    },
    /// Requested categorical attribute does not exist on the table.
    UnknownAttribute(String),
    /// A row index is past the end of the dataset.
    RowOutOfRange {
        /// Offending row.
        row: usize,
    },
}

impl std::fmt::Display for DatasetError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DatasetError::RaggedMatrix => write!(f, "point buffer is not a multiple of dim"),
            DatasetError::GroupLengthMismatch => write!(f, "group labels do not match point count"),
            DatasetError::GroupOutOfRange { row } => {
                write!(f, "group label out of range at row {row}")
            }
            DatasetError::InvalidCoordinate { row, col } => {
                write!(f, "negative or non-finite coordinate at ({row}, {col})")
            }
            DatasetError::UnknownAttribute(a) => write!(f, "unknown categorical attribute {a:?}"),
            DatasetError::RowOutOfRange { row } => write!(f, "row {row} out of range"),
        }
    }
}

impl std::error::Error for DatasetError {}

/// A database of `n` points in `R^d_+` partitioned into `C` disjoint groups.
///
/// Points are stored row-major in a flat `Vec<f64>`; `groups[i]` is the
/// group index of row `i` (in `0..num_groups`). All FairHMS algorithms
/// consume this type after [`Dataset::normalize`] (scale-only) and usually
/// after restriction to the union of per-group skylines.
#[derive(Debug)]
pub struct Dataset {
    name: String,
    dim: usize,
    points: Vec<f64>,
    /// Shared so consumers needing owned group labels (e.g. the fairness
    /// matroid) can hold a refcounted handle instead of an `O(n)` copy.
    groups: Arc<[usize]>,
    num_groups: usize,
    group_names: Vec<String>,
    /// Lazily built block-tiled SoA view of `points`, shared by every
    /// consumer of this dataset (the serving stack holds `Arc<Dataset>`,
    /// so one build serves all queries against a prepared form). Reset by
    /// the in-place mutators ([`Dataset::normalize`]).
    soa: OnceLock<SoaMatrix>,
}

/// Deep copy of the full point matrix (group labels stay shared).
///
/// Counted by [`deep_clone_count`] so tests can assert hot paths share
/// datasets (via `Arc<Dataset>`) instead of copying them. Prefer
/// `Arc::clone` on an already-shared dataset wherever possible.
impl Clone for Dataset {
    fn clone(&self) -> Self {
        // ordering: test probe increment; SeqCst pairs with the sampling
        // loads in deep_clone_count().
        DEEP_CLONES.fetch_add(1, Ordering::SeqCst);
        Self {
            name: self.name.clone(),
            dim: self.dim,
            points: self.points.clone(),
            groups: Arc::clone(&self.groups),
            num_groups: self.num_groups,
            group_names: self.group_names.clone(),
            soa: OnceLock::new(),
        }
    }
}

impl Dataset {
    /// Builds a dataset, validating shapes, labels, and coordinates.
    pub fn new(
        name: impl Into<String>,
        dim: usize,
        points: Vec<f64>,
        groups: Vec<usize>,
        group_names: Vec<String>,
    ) -> Result<Self, DatasetError> {
        if dim == 0 || !points.len().is_multiple_of(dim) {
            return Err(DatasetError::RaggedMatrix);
        }
        let n = points.len() / dim;
        if groups.len() != n {
            return Err(DatasetError::GroupLengthMismatch);
        }
        // With explicit names, labels must index into them; otherwise the
        // group count is inferred from the labels.
        let num_groups = if group_names.is_empty() {
            groups.iter().copied().max().map_or(1, |g| g + 1)
        } else {
            group_names.len()
        };
        for (row, &g) in groups.iter().enumerate() {
            if g >= num_groups {
                return Err(DatasetError::GroupOutOfRange { row });
            }
        }
        for (i, &v) in points.iter().enumerate() {
            if !v.is_finite() || v < 0.0 {
                return Err(DatasetError::InvalidCoordinate {
                    row: i / dim,
                    col: i % dim,
                });
            }
        }
        let group_names = if group_names.is_empty() {
            (0..num_groups).map(|g| format!("g{g}")).collect()
        } else {
            group_names
        };
        Ok(Self {
            name: name.into(),
            dim,
            points,
            groups: groups.into(),
            num_groups,
            group_names,
            soa: OnceLock::new(),
        })
    }

    /// A dataset with a single group (vanilla HMS).
    pub fn ungrouped(
        name: impl Into<String>,
        dim: usize,
        points: Vec<f64>,
    ) -> Result<Self, DatasetError> {
        let n = points.len().checked_div(dim).unwrap_or(0);
        Self::new(name, dim, points, vec![0; n], vec!["all".into()])
    }

    /// Dataset name (for reports).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of points.
    pub fn len(&self) -> usize {
        self.points.len() / self.dim
    }

    /// True when the dataset holds no points.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// Dimensionality `d`.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Number of groups `C`.
    pub fn num_groups(&self) -> usize {
        self.num_groups
    }

    /// Human-readable group names, indexed by group id.
    pub fn group_names(&self) -> &[String] {
        &self.group_names
    }

    /// The `i`-th point as a slice.
    #[inline]
    pub fn point(&self, i: usize) -> &[f64] {
        &self.points[i * self.dim..(i + 1) * self.dim]
    }

    /// The flat row-major point buffer.
    pub fn points_flat(&self) -> &[f64] {
        &self.points
    }

    /// The block-tiled SoA view of the point matrix, built on first use
    /// and cached for the lifetime of this dataset (see
    /// [`fairhms_geometry::soa::SoaMatrix`]).
    pub fn soa(&self) -> &SoaMatrix {
        self.soa
            .get_or_init(|| SoaMatrix::from_rows(&self.points, self.dim))
    }

    /// `max_{p ∈ D} ⟨u, p⟩` through the active kernel backend.
    ///
    /// Bitwise-equal across backends: the blocked kernel performs each
    /// row's multiply-adds and the `f64::max` fold in exactly the scalar
    /// order (see [`fairhms_geometry::soa`]). Returns `0.0` on an empty
    /// dataset.
    pub fn max_dot(&self, u: &[f64]) -> f64 {
        match kernel_backend() {
            KernelBackend::Scalar => vecmath::max_utility(&self.points, self.dim, u),
            KernelBackend::Blocked => self.soa().max_dot(u),
        }
    }

    /// `max_{p ∈ D} ⟨u, p⟩` for every utility in `us` — the `m × n`
    /// extreme-value sweep of BiGreedy setup, through the active kernel
    /// backend.
    ///
    /// Under the blocked backend this is the cache-blocked batched form:
    /// the point matrix streams through memory once for all utilities
    /// instead of once per utility (see
    /// [`fairhms_geometry::soa::SoaMatrix::max_dot_many`]). Bitwise-equal
    /// to mapping [`Dataset::max_dot`] over `us` under either backend.
    pub fn max_dot_many(&self, us: &[Vec<f64>]) -> Vec<f64> {
        match kernel_backend() {
            KernelBackend::Scalar => us
                .iter()
                .map(|u| vecmath::max_utility(&self.points, self.dim, u))
                .collect(),
            KernelBackend::Blocked => {
                let mut out = vec![0.0; us.len()];
                self.soa().max_dot_many(us, &mut out);
                out
            }
        }
    }

    /// Writes `⟨p_i, u⟩` for every row `i` into `out` through the active
    /// kernel backend (bitwise-equal across backends).
    ///
    /// # Panics
    /// Panics if `out.len() != self.len()`.
    pub fn dot_batch(&self, u: &[f64], out: &mut [f64]) {
        match kernel_backend() {
            KernelBackend::Scalar => {
                fairhms_geometry::soa::dot_batch_rows(&self.points, self.dim, u, out)
            }
            KernelBackend::Blocked => self.soa().dot_batch(u, out),
        }
    }

    /// Group label of row `i`.
    #[inline]
    pub fn group_of(&self, i: usize) -> usize {
        self.groups[i]
    }

    /// All group labels.
    pub fn groups(&self) -> &[usize] {
        &self.groups
    }

    /// A shared handle to the group labels (a refcount bump, never a
    /// copy) — for consumers that must own the labels, like the fairness
    /// matroid built per instance.
    pub fn shared_groups(&self) -> Arc<[usize]> {
        Arc::clone(&self.groups)
    }

    /// `|D_c|` for every group `c`.
    pub fn group_sizes(&self) -> Vec<usize> {
        let mut sizes = vec![0usize; self.num_groups];
        for &g in self.groups.iter() {
            sizes[g] += 1;
        }
        sizes
    }

    /// Row indices belonging to group `c`.
    pub fn group_indices(&self, c: usize) -> Vec<usize> {
        (0..self.len()).filter(|&i| self.groups[i] == c).collect()
    }

    /// Scale-only normalization: divides every attribute by its maximum so
    /// values lie in `[0, 1]`. Returns the scale factors applied.
    ///
    /// Happiness ratios are invariant under this map (scaling attribute `i`
    /// by `s > 0` is a bijection `u[i] ↦ u[i]/s` of the utility space), so
    /// normalized and raw datasets have identical optima. Attributes that
    /// are identically zero are left unchanged.
    pub fn normalize(&mut self) -> Vec<f64> {
        // In-place mutation: drop any previously built SoA view so the
        // next kernel call re-tiles the rescaled matrix.
        self.soa = OnceLock::new();
        let mut maxima = vec![0.0_f64; self.dim];
        for p in self.points.chunks_exact(self.dim) {
            for (m, &v) in maxima.iter_mut().zip(p) {
                *m = m.max(v);
            }
        }
        for p in self.points.chunks_exact_mut(self.dim) {
            for (v, &m) in p.iter_mut().zip(&maxima) {
                if m > 0.0 {
                    *v /= m;
                }
            }
        }
        maxima
    }

    /// [`Dataset::normalize`] with the two passes (column maxima, then
    /// scaling) split across `threads` row-aligned chunks on scoped std
    /// threads.
    ///
    /// **Bit-identical** to the serial version: `f64::max` is order-
    /// independent, chunk boundaries are row-aligned, and every element is
    /// divided by the same merged maxima — so sharded and unsharded
    /// preparation normalize to exactly the same matrix.
    pub fn normalize_parallel(&mut self, threads: usize) -> Vec<f64> {
        let threads = threads.max(1);
        let n = self.len();
        if threads == 1 || n < 2 * threads {
            return self.normalize();
        }
        self.soa = OnceLock::new();
        let dim = self.dim;
        let chunk_len = n.div_ceil(threads) * dim;
        let maxima = std::thread::scope(|s| {
            let handles: Vec<_> = self
                .points
                .chunks(chunk_len)
                .map(|chunk| {
                    s.spawn(move || {
                        let mut m = vec![0.0_f64; dim];
                        for p in chunk.chunks_exact(dim) {
                            for (mi, &v) in m.iter_mut().zip(p) {
                                *mi = mi.max(v);
                            }
                        }
                        m
                    })
                })
                .collect();
            let mut maxima = vec![0.0_f64; dim];
            for h in handles {
                for (a, b) in maxima.iter_mut().zip(h.join().unwrap()) {
                    *a = a.max(b);
                }
            }
            maxima
        });
        std::thread::scope(|s| {
            for chunk in self.points.chunks_mut(chunk_len) {
                let maxima = &maxima;
                s.spawn(move || {
                    for p in chunk.chunks_exact_mut(dim) {
                        for (v, &m) in p.iter_mut().zip(maxima) {
                            if m > 0.0 {
                                *v /= m;
                            }
                        }
                    }
                });
            }
        });
        maxima
    }

    /// The sub-dataset induced by `rows` (order preserved, groups kept).
    pub fn subset(&self, rows: &[usize]) -> Dataset {
        let mut points = Vec::with_capacity(rows.len() * self.dim);
        let mut groups = Vec::with_capacity(rows.len());
        for &r in rows {
            points.extend_from_slice(self.point(r));
            groups.push(self.groups[r]);
        }
        Dataset {
            name: self.name.clone(),
            dim: self.dim,
            points,
            groups: groups.into(),
            num_groups: self.num_groups,
            group_names: self.group_names.clone(),
            soa: OnceLock::new(),
        }
    }

    /// A new dataset with `coords` appended as the last row, labeled
    /// `group` (which must be an existing group index — mutation never
    /// invents groups). Like [`Dataset::subset`], this is a derivation
    /// constructor — a new dataset, not a copy — so it is not counted by
    /// [`deep_clone_count`], and the derived SoA view starts cold.
    pub fn with_appended_row(&self, coords: &[f64], group: usize) -> Result<Dataset, DatasetError> {
        if coords.len() != self.dim {
            return Err(DatasetError::RaggedMatrix);
        }
        if group >= self.num_groups {
            return Err(DatasetError::GroupOutOfRange { row: self.len() });
        }
        for (col, &v) in coords.iter().enumerate() {
            if !v.is_finite() || v < 0.0 {
                return Err(DatasetError::InvalidCoordinate {
                    row: self.len(),
                    col,
                });
            }
        }
        let mut points = Vec::with_capacity(self.points.len() + self.dim);
        points.extend_from_slice(&self.points);
        points.extend_from_slice(coords);
        let mut groups = Vec::with_capacity(self.groups.len() + 1);
        groups.extend_from_slice(&self.groups);
        groups.push(group);
        Ok(Dataset {
            name: self.name.clone(),
            dim: self.dim,
            points,
            groups: groups.into(),
            num_groups: self.num_groups,
            group_names: self.group_names.clone(),
            soa: OnceLock::new(),
        })
    }

    /// A new dataset with `row` removed; every later row shifts down by
    /// one (the compacted id space mutation consumers expect). The group
    /// count is preserved even when the removed row was its group's last
    /// member. A derivation constructor like [`Dataset::with_appended_row`]
    /// — not counted by [`deep_clone_count`].
    pub fn with_removed_row(&self, row: usize) -> Result<Dataset, DatasetError> {
        if row >= self.len() {
            return Err(DatasetError::RowOutOfRange { row });
        }
        let mut points = Vec::with_capacity(self.points.len() - self.dim);
        points.extend_from_slice(&self.points[..row * self.dim]);
        points.extend_from_slice(&self.points[(row + 1) * self.dim..]);
        let mut groups = Vec::with_capacity(self.groups.len() - 1);
        groups.extend_from_slice(&self.groups[..row]);
        groups.extend_from_slice(&self.groups[row + 1..]);
        Ok(Dataset {
            name: self.name.clone(),
            dim: self.dim,
            points,
            groups: groups.into(),
            num_groups: self.num_groups,
            group_names: self.group_names.clone(),
            soa: OnceLock::new(),
        })
    }

    /// A copy of this dataset restricted to the first `dim_keep` attributes.
    pub fn project(&self, dim_keep: usize) -> Dataset {
        assert!(dim_keep >= 1 && dim_keep <= self.dim);
        let mut points = Vec::with_capacity(self.len() * dim_keep);
        for p in self.points.chunks_exact(self.dim) {
            points.extend_from_slice(&p[..dim_keep]);
        }
        Dataset {
            name: self.name.clone(),
            dim: dim_keep,
            points,
            // same rows, same labels: share the allocation
            groups: Arc::clone(&self.groups),
            num_groups: self.num_groups,
            group_names: self.group_names.clone(),
            soa: OnceLock::new(),
        }
    }
}

/// A numeric table carrying several categorical attributes, from which
/// [`Dataset`]s with different group partitions are derived — mirroring the
/// paper's use of e.g. Adult grouped by gender, race, or their combination.
#[derive(Debug, Clone)]
pub struct Table {
    /// Table name.
    pub name: String,
    /// Numeric dimensionality.
    pub dim: usize,
    /// Row-major numeric matrix.
    pub points: Vec<f64>,
    /// Categorical attributes: `(attribute name, per-row value index, value names)`.
    pub cats: Vec<(String, Vec<usize>, Vec<String>)>,
}

impl Table {
    /// Number of rows.
    pub fn len(&self) -> usize {
        self.points.len().checked_div(self.dim).unwrap_or(0)
    }

    /// True when the table has no rows.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// Derives a [`Dataset`] grouped by the cross product of the named
    /// categorical attributes (e.g. `["gender", "race"]` gives the paper's
    /// "G+R" partition with `C = C_gender × C_race` groups). Only group
    /// combinations that actually occur get a group id.
    pub fn dataset(&self, attrs: &[&str]) -> Result<Dataset, DatasetError> {
        let n = self.len();
        let mut selected = Vec::with_capacity(attrs.len());
        for &a in attrs {
            let cat = self
                .cats
                .iter()
                .find(|(name, _, _)| name == a)
                .ok_or_else(|| DatasetError::UnknownAttribute(a.to_string()))?;
            selected.push(cat);
        }
        let mut combo_ids: BTreeMap<Vec<usize>, usize> = BTreeMap::new();
        let mut groups = Vec::with_capacity(n);
        for row in 0..n {
            let key: Vec<usize> = selected.iter().map(|(_, vals, _)| vals[row]).collect();
            let next = combo_ids.len();
            let id = *combo_ids.entry(key).or_insert(next);
            groups.push(id);
        }
        let mut group_names = vec![String::new(); combo_ids.len()];
        for (key, &id) in &combo_ids {
            let name = key
                .iter()
                .zip(&selected)
                .map(|(&v, (_, _, names))| names[v].clone())
                .collect::<Vec<_>>()
                .join("+");
            group_names[id] = name;
        }
        let label = format!("{} ({})", self.name, attrs.join("+"));
        Dataset::new(label, self.dim, self.points.clone(), groups, group_names)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Dataset {
        Dataset::new(
            "tiny",
            2,
            vec![2.0, 0.0, 0.0, 4.0, 1.0, 1.0],
            vec![0, 1, 0],
            vec!["a".into(), "b".into()],
        )
        .unwrap()
    }

    #[test]
    fn construction_and_accessors() {
        let d = tiny();
        assert_eq!(d.len(), 3);
        assert_eq!(d.dim(), 2);
        assert_eq!(d.num_groups(), 2);
        assert_eq!(d.point(1), &[0.0, 4.0]);
        assert_eq!(d.group_sizes(), vec![2, 1]);
        assert_eq!(d.group_indices(0), vec![0, 2]);
    }

    #[test]
    fn clone_moves_the_deep_clone_probe() {
        let d = tiny();
        let before = deep_clone_count();
        let copy = d.clone();
        assert_eq!(copy.points_flat(), d.points_flat());
        // Monotone global counter: our clone adds at least one.
        assert!(deep_clone_count() > before);
        // Derivations are new datasets, not copies — not counted.
        let mid = deep_clone_count();
        let _sub = d.subset(&[0, 1]);
        let _proj = d.project(1);
        assert_eq!(deep_clone_count(), mid);
    }

    #[test]
    fn validation_errors() {
        assert_eq!(
            Dataset::new("x", 2, vec![1.0], vec![], vec![]).unwrap_err(),
            DatasetError::RaggedMatrix
        );
        assert_eq!(
            Dataset::new("x", 1, vec![1.0], vec![0, 1], vec![]).unwrap_err(),
            DatasetError::GroupLengthMismatch
        );
        assert_eq!(
            Dataset::new("x", 1, vec![-1.0], vec![0], vec![]).unwrap_err(),
            DatasetError::InvalidCoordinate { row: 0, col: 0 }
        );
        assert_eq!(
            Dataset::new("x", 1, vec![f64::NAN], vec![0], vec![]).unwrap_err(),
            DatasetError::InvalidCoordinate { row: 0, col: 0 }
        );
        assert_eq!(
            Dataset::new("x", 1, vec![1.0], vec![3], vec!["only".into()]).unwrap_err(),
            DatasetError::GroupOutOfRange { row: 0 }
        );
    }

    #[test]
    fn normalize_is_scale_only() {
        let mut d = tiny();
        let scales = d.normalize();
        assert_eq!(scales, vec![2.0, 4.0]);
        assert_eq!(d.point(0), &[1.0, 0.0]);
        assert_eq!(d.point(1), &[0.0, 1.0]);
        assert_eq!(d.point(2), &[0.5, 0.25]);
    }

    #[test]
    fn normalize_zero_column_noop() {
        let mut d = Dataset::ungrouped("z", 2, vec![0.0, 1.0, 0.0, 2.0]).unwrap();
        let scales = d.normalize();
        assert_eq!(scales[0], 0.0);
        assert_eq!(d.point(0), &[0.0, 0.5]);
    }

    #[test]
    fn soa_view_matches_scalar_and_resets_on_normalize() {
        let mut d = tiny();
        let u = [0.3, 0.7];
        // Build the tiled view, then check both dispatch paths agree with
        // the scalar oracle bitwise.
        let expect = vecmath::max_utility(d.points_flat(), d.dim(), &u);
        assert_eq!(d.soa().max_dot(&u).to_bits(), expect.to_bits());
        assert_eq!(d.max_dot(&u).to_bits(), expect.to_bits());
        let mut out = vec![0.0; d.len()];
        d.dot_batch(&u, &mut out);
        for (i, &v) in out.iter().enumerate() {
            assert_eq!(v.to_bits(), vecmath::dot(d.point(i), &u).to_bits());
        }
        // normalize mutates the matrix in place: the cached view must be
        // rebuilt, not served stale.
        d.normalize();
        let expect = vecmath::max_utility(d.points_flat(), d.dim(), &u);
        assert_eq!(d.soa().max_dot(&u).to_bits(), expect.to_bits());
        assert_eq!(d.max_dot(&u).to_bits(), expect.to_bits());
    }

    #[test]
    fn subset_preserves_groups() {
        let d = tiny();
        let s = d.subset(&[2, 0]);
        assert_eq!(s.len(), 2);
        assert_eq!(s.point(0), &[1.0, 1.0]);
        assert_eq!(s.group_of(0), 0);
        assert_eq!(s.num_groups(), 2);
    }

    #[test]
    fn project_keeps_prefix_attributes() {
        let d = tiny();
        let p = d.project(1);
        assert_eq!(p.dim(), 1);
        assert_eq!(p.point(1), &[0.0]);
    }

    #[test]
    fn appended_and_removed_rows_derive_new_datasets() {
        let d = tiny();
        let before = deep_clone_count();
        let a = d.with_appended_row(&[3.0, 3.0], 1).unwrap();
        assert_eq!(a.len(), 4);
        assert_eq!(a.point(3), &[3.0, 3.0]);
        assert_eq!(a.group_of(3), 1);
        assert_eq!(a.num_groups(), 2);
        let r = a.with_removed_row(1).unwrap();
        assert_eq!(r.len(), 3);
        assert_eq!(r.point(1), &[1.0, 1.0]); // old row 2 shifted down
        assert_eq!(r.point(2), &[3.0, 3.0]);
        assert_eq!(r.group_sizes(), vec![2, 1]);
        // Derivations, not copies: the clone probe must not move.
        assert_eq!(deep_clone_count(), before);
        // Removing a group's last member keeps the group around (empty).
        let only_b_gone = tiny().with_removed_row(1).unwrap();
        assert_eq!(only_b_gone.num_groups(), 2);
        assert_eq!(only_b_gone.group_sizes(), vec![2, 0]);
    }

    #[test]
    fn row_mutation_validation_errors() {
        let d = tiny();
        assert_eq!(
            d.with_appended_row(&[1.0], 0).unwrap_err(),
            DatasetError::RaggedMatrix
        );
        assert_eq!(
            d.with_appended_row(&[1.0, 1.0], 9).unwrap_err(),
            DatasetError::GroupOutOfRange { row: 3 }
        );
        assert_eq!(
            d.with_appended_row(&[1.0, -0.5], 0).unwrap_err(),
            DatasetError::InvalidCoordinate { row: 3, col: 1 }
        );
        assert_eq!(
            d.with_appended_row(&[1.0, f64::NAN], 0).unwrap_err(),
            DatasetError::InvalidCoordinate { row: 3, col: 1 }
        );
        assert_eq!(
            d.with_removed_row(3).unwrap_err(),
            DatasetError::RowOutOfRange { row: 3 }
        );
    }

    #[test]
    fn table_cross_product_grouping() {
        let t = Table {
            name: "t".into(),
            dim: 1,
            points: vec![1.0, 2.0, 3.0, 4.0],
            cats: vec![
                ("g".into(), vec![0, 1, 0, 1], vec!["f".into(), "m".into()]),
                ("r".into(), vec![0, 0, 1, 1], vec!["x".into(), "y".into()]),
            ],
        };
        let by_g = t.dataset(&["g"]).unwrap();
        assert_eq!(by_g.num_groups(), 2);
        let by_gr = t.dataset(&["g", "r"]).unwrap();
        assert_eq!(by_gr.num_groups(), 4);
        assert!(by_gr.group_names().contains(&"f+x".to_string()));
        assert!(t.dataset(&["nope"]).is_err());
    }
}
