//! Minimal CSV import/export.
//!
//! The harness writes every figure's series as CSV under `results/` and can
//! load externally supplied datasets with the layout
//! `attr_1,…,attr_d,group`. The format is deliberately tiny (no quoting,
//! no escaping) — inputs are numeric matrices plus a label column.

use std::io::{BufRead, Write};
use std::path::Path;

use crate::dataset::{Dataset, DatasetError};

/// Errors raised by CSV parsing.
#[derive(Debug)]
pub enum CsvError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// A cell failed to parse as a number.
    BadNumber {
        /// 1-based line number.
        line: usize,
        /// Cell content.
        cell: String,
    },
    /// A row has the wrong number of columns.
    BadWidth {
        /// 1-based line number.
        line: usize,
    },
    /// The resulting matrix failed dataset validation.
    Dataset(DatasetError),
}

impl std::fmt::Display for CsvError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CsvError::Io(e) => write!(f, "io error: {e}"),
            CsvError::BadNumber { line, cell } => write!(f, "line {line}: bad number {cell:?}"),
            CsvError::BadWidth { line } => write!(f, "line {line}: wrong column count"),
            CsvError::Dataset(e) => write!(f, "dataset: {e}"),
        }
    }
}

impl std::error::Error for CsvError {}

impl From<std::io::Error> for CsvError {
    fn from(e: std::io::Error) -> Self {
        CsvError::Io(e)
    }
}

/// Reads a dataset from `attr_1,…,attr_d,group` rows (no header). Group
/// labels are arbitrary strings; they are interned in first-seen order.
pub fn read_dataset(path: &Path, name: &str, dim: usize) -> Result<Dataset, CsvError> {
    let file = std::fs::File::open(path)?;
    let reader = std::io::BufReader::new(file);
    let mut points = Vec::new();
    let mut groups = Vec::new();
    let mut names: Vec<String> = Vec::new();
    for (lineno, line) in reader.lines().enumerate() {
        let line = line?;
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        let cells: Vec<&str> = line.split(',').collect();
        if cells.len() != dim + 1 {
            return Err(CsvError::BadWidth { line: lineno + 1 });
        }
        for cell in &cells[..dim] {
            let v: f64 = cell.trim().parse().map_err(|_| CsvError::BadNumber {
                line: lineno + 1,
                cell: cell.to_string(),
            })?;
            points.push(v);
        }
        let label = cells[dim].trim();
        let gid = match names.iter().position(|n| n == label) {
            Some(i) => i,
            None => {
                names.push(label.to_string());
                names.len() - 1
            }
        };
        groups.push(gid);
    }
    Dataset::new(name, dim, points, groups, names).map_err(CsvError::Dataset)
}

/// Infers the dimensionality of a `attr_1,…,attr_d,group` file from its
/// first non-empty row (`columns − 1`; the trailing column is the group
/// label). Returns [`CsvError::BadWidth`] for an empty file or a
/// single-column row.
pub fn sniff_dim(path: &Path) -> Result<usize, CsvError> {
    let file = std::fs::File::open(path)?;
    let reader = std::io::BufReader::new(file);
    for (lineno, line) in reader.lines().enumerate() {
        let line = line?;
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        let cols = line.split(',').count();
        if cols < 2 {
            return Err(CsvError::BadWidth { line: lineno + 1 });
        }
        return Ok(cols - 1);
    }
    Err(CsvError::BadWidth { line: 1 })
}

/// Reads a dataset, inferring its dimensionality via [`sniff_dim`] — the
/// loading path used by the service catalog, where files carry no schema.
pub fn read_dataset_auto(path: &Path, name: &str) -> Result<Dataset, CsvError> {
    let dim = sniff_dim(path)?;
    read_dataset(path, name, dim)
}

/// Writes a dataset as `attr_1,…,attr_d,group_name` rows.
pub fn write_dataset(path: &Path, data: &Dataset) -> std::io::Result<()> {
    let mut out = std::io::BufWriter::new(std::fs::File::create(path)?);
    for i in 0..data.len() {
        for v in data.point(i) {
            write!(out, "{v},")?;
        }
        writeln!(out, "{}", data.group_names()[data.group_of(i)])?;
    }
    Ok(())
}

/// Writes a result table: a header row followed by records. Used by every
/// figure binary to persist its series.
pub fn write_series(path: &Path, header: &[&str], rows: &[Vec<String>]) -> std::io::Result<()> {
    if let Some(dir) = path.parent() {
        std::fs::create_dir_all(dir)?;
    }
    let mut out = std::io::BufWriter::new(std::fs::File::create(path)?);
    writeln!(out, "{}", header.join(","))?;
    for row in rows {
        writeln!(out, "{}", row.join(","))?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_dataset() {
        let dir = std::env::temp_dir().join("fairhms_csv_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("tiny.csv");
        let d = Dataset::new(
            "tiny",
            2,
            vec![0.25, 1.0, 0.5, 0.75],
            vec![0, 1],
            vec!["a".into(), "b".into()],
        )
        .unwrap();
        write_dataset(&path, &d).unwrap();
        let r = read_dataset(&path, "tiny", 2).unwrap();
        assert_eq!(r.len(), 2);
        assert_eq!(r.point(0), &[0.25, 1.0]);
        assert_eq!(r.group_names(), &["a".to_string(), "b".to_string()]);
    }

    #[test]
    fn read_errors_reported_with_line() {
        let dir = std::env::temp_dir().join("fairhms_csv_test");
        std::fs::create_dir_all(&dir).unwrap();
        let p1 = dir.join("badnum.csv");
        std::fs::write(&p1, "1.0,zzz,a\n").unwrap();
        match read_dataset(&p1, "x", 2) {
            Err(CsvError::BadNumber { line: 1, .. }) => {}
            other => panic!("expected BadNumber, got {other:?}"),
        }
        let p2 = dir.join("badwidth.csv");
        std::fs::write(&p2, "1.0,a\n").unwrap();
        match read_dataset(&p2, "x", 2) {
            Err(CsvError::BadWidth { line: 1 }) => {}
            other => panic!("expected BadWidth, got {other:?}"),
        }
    }

    #[test]
    fn sniff_dim_and_auto_read() {
        let dir = std::env::temp_dir().join("fairhms_csv_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("sniff.csv");
        std::fs::write(&path, "\n0.5,0.25,1.0,a\n0.1,0.2,0.3,b\n").unwrap();
        assert_eq!(sniff_dim(&path).unwrap(), 3);
        let d = read_dataset_auto(&path, "sniffed").unwrap();
        assert_eq!((d.len(), d.dim(), d.num_groups()), (2, 3, 2));

        let empty = dir.join("empty.csv");
        std::fs::write(&empty, "").unwrap();
        assert!(matches!(sniff_dim(&empty), Err(CsvError::BadWidth { .. })));
    }

    #[test]
    fn write_series_creates_directories() {
        let dir = std::env::temp_dir().join("fairhms_csv_test/nested/deep");
        let path = dir.join("s.csv");
        let _ = std::fs::remove_file(&path);
        write_series(&path, &["k", "mhr"], &[vec!["5".into(), "0.93".into()]]).unwrap();
        let content = std::fs::read_to_string(&path).unwrap();
        assert_eq!(content, "k,mhr\n5,0.93\n");
    }
}
