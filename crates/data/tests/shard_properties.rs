//! Property tests pinning the sharded-preparation equivalence: for any
//! dataset, partition strategy, and shard count, per-shard group skylines
//! merged through [`fairhms_data::shard::merge_shard_skylines`] equal the
//! unsharded [`group_skyline_indices`] output *exactly* (same rows, same
//! order) — the invariant that makes catalog sharding invisible to
//! answers.

use proptest::prelude::*;

use fairhms_data::dataset::Dataset;
use fairhms_data::shard::{
    merge_shard_skylines_parallel, sharded_group_skyline, PartitionStrategy, ShardPlan,
};
use fairhms_data::skyline::{group_skyline_indices, group_skyline_of_rows};

const SHARD_COUNTS: [usize; 4] = [1, 2, 3, 7];
const STRATEGIES: [PartitionStrategy; 2] = [
    PartitionStrategy::RoundRobin,
    PartitionStrategy::GroupStratified,
];

/// A random dataset: `d` in 2..=4, up to `max_n` rows, up to 4 groups
/// (group labels random, so some groups may be empty or tiny).
fn dataset(max_n: usize) -> impl Strategy<Value = Dataset> {
    (2usize..5).prop_flat_map(move |d| {
        prop::collection::vec(
            (prop::collection::vec(0.0f64..=1.0, d..=d), 0usize..4),
            1..=max_n,
        )
        .prop_map(move |rows| {
            let mut points = Vec::with_capacity(rows.len() * d);
            let mut groups = Vec::with_capacity(rows.len());
            for (p, g) in rows {
                points.extend(p);
                groups.push(g);
            }
            // 4 named groups regardless of which labels occur, so
            // vacant groups exercise the empty-group paths.
            Dataset::new(
                "prop",
                d,
                points,
                groups,
                (0..4).map(|g| format!("g{g}")).collect(),
            )
            .unwrap()
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The headline equivalence: sharded prep + merge == unsharded prep,
    /// for every shard count and both strategies.
    #[test]
    fn sharded_merge_equals_unsharded_skyline(data in dataset(48)) {
        let reference = group_skyline_indices(&data);
        for &shards in &SHARD_COUNTS {
            for &strat in &STRATEGIES {
                let plan = ShardPlan::build(&data, shards, strat);
                let merged = sharded_group_skyline(&data, &plan);
                prop_assert_eq!(
                    &merged, &reference,
                    "shards={} strategy={} diverged", shards, strat
                );
                // The threaded merge (what the catalog runs) agrees with
                // the sequential oracle.
                let per_shard: Vec<Vec<usize>> = plan
                    .assignments()
                    .iter()
                    .map(|rows| group_skyline_of_rows(&data, rows))
                    .collect();
                let parallel = merge_shard_skylines_parallel(&data, &per_shard);
                prop_assert_eq!(
                    &parallel, &reference,
                    "parallel merge diverged at shards={} strategy={}", shards, strat
                );
            }
        }
    }

    /// Every plan is a true partition: disjoint shards covering 0..n,
    /// each sorted ascending, never more shards than rows.
    #[test]
    fn plans_partition_the_rows(data in dataset(48)) {
        for &shards in &SHARD_COUNTS {
            for &strat in &STRATEGIES {
                let plan = ShardPlan::build(&data, shards, strat);
                prop_assert!(plan.num_shards() <= data.len().max(1));
                let mut seen = vec![false; data.len()];
                for s in 0..plan.num_shards() {
                    let rows = plan.rows(s);
                    prop_assert!(rows.windows(2).all(|w| w[0] < w[1]));
                    for &r in rows {
                        prop_assert!(!seen[r], "row {} dealt twice", r);
                        seen[r] = true;
                    }
                }
                prop_assert!(seen.iter().all(|&b| b), "some row unassigned");
            }
        }
    }

    /// Stratified plans represent every group in min(|D_c|, shards)
    /// shards — the "no shard loses a whole group" guarantee.
    #[test]
    fn stratified_spreads_groups(data in dataset(48)) {
        for &shards in &SHARD_COUNTS {
            let plan = ShardPlan::build(&data, shards, PartitionStrategy::GroupStratified);
            let sizes = data.group_sizes();
            for (g, &sz) in sizes.iter().enumerate() {
                let holding = (0..plan.num_shards())
                    .filter(|&s| plan.rows(s).iter().any(|&r| data.group_of(r) == g))
                    .count();
                prop_assert_eq!(
                    holding,
                    sz.min(plan.num_shards()),
                    "group {} (size {}) in {} of {} shards",
                    g, sz, holding, plan.num_shards()
                );
            }
        }
    }

    /// `group_skyline_of_rows` over all rows is exactly
    /// `group_skyline_indices` (the shard work unit generalizes the
    /// classic pipeline).
    #[test]
    fn restricted_skyline_generalizes_global(data in dataset(48)) {
        let all: Vec<usize> = (0..data.len()).collect();
        prop_assert_eq!(
            group_skyline_of_rows(&data, &all),
            group_skyline_indices(&data)
        );
    }
}
