//! Property tests for the dataset substrate.

use proptest::prelude::*;

use fairhms_data::dataset::Dataset;
use fairhms_data::gen::groups_by_sum;
use fairhms_data::skyline::{dominates, group_skyline_indices, skyline_indices, skyline_of};

fn flat_points(d: usize, max_n: usize) -> impl Strategy<Value = Vec<f64>> {
    prop::collection::vec(0.0f64..=1.0, d..=d * max_n).prop_map(move |mut v| {
        v.truncate(v.len() / d * d);
        v
    })
}

fn naive_skyline(points: &[f64], dim: usize) -> Vec<usize> {
    let n = points.len() / dim;
    (0..n)
        .filter(|&i| {
            let p = &points[i * dim..(i + 1) * dim];
            !(0..n).any(|j| dominates(&points[j * dim..(j + 1) * dim], p))
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn skyline_matches_naive_2d(points in flat_points(2, 40)) {
        prop_assert_eq!(skyline_of(&points, 2), naive_skyline(&points, 2));
    }

    #[test]
    fn skyline_matches_naive_3d(points in flat_points(3, 25)) {
        prop_assert_eq!(skyline_of(&points, 3), naive_skyline(&points, 3));
    }

    #[test]
    fn skyline_matches_naive_5d(points in flat_points(5, 15)) {
        prop_assert_eq!(skyline_of(&points, 5), naive_skyline(&points, 5));
    }

    #[test]
    fn normalize_is_idempotent(points in flat_points(3, 20)) {
        if points.is_empty() { return Ok(()); }
        let mut d1 = Dataset::ungrouped("a", 3, points).unwrap();
        d1.normalize();
        let once = d1.points_flat().to_vec();
        d1.normalize();
        for (a, b) in once.iter().zip(d1.points_flat()) {
            prop_assert!((a - b).abs() < 1e-12);
        }
    }

    #[test]
    fn normalize_preserves_dominance(points in flat_points(3, 20)) {
        if points.len() < 6 { return Ok(()); }
        let raw = Dataset::ungrouped("raw", 3, points.clone()).unwrap();
        let mut norm = raw.clone();
        norm.normalize();
        prop_assert_eq!(skyline_indices(&raw), skyline_indices(&norm));
    }

    #[test]
    fn group_skyline_union_superset_of_global(points in flat_points(4, 20), c in 1usize..=4) {
        if points.is_empty() { return Ok(()); }
        let n = points.len() / 4;
        let groups: Vec<usize> = (0..n).map(|i| i % c).collect();
        let ds = Dataset::new("g", 4, points, groups, (0..c).map(|g| format!("g{g}")).collect()).unwrap();
        let global = skyline_indices(&ds);
        let union = group_skyline_indices(&ds);
        for g in &global {
            prop_assert!(union.binary_search(g).is_ok());
        }
    }

    #[test]
    fn groups_by_sum_are_balanced_and_ordered(points in flat_points(2, 50), c in 1usize..=5) {
        if points.is_empty() { return Ok(()); }
        let n = points.len() / 2;
        let groups = groups_by_sum(&points, 2, c);
        prop_assert_eq!(groups.len(), n);
        // sizes differ by at most 1 (quantile split)
        let mut sizes = vec![0usize; c];
        for &g in &groups { sizes[g] += 1; }
        let used: Vec<usize> = sizes.iter().copied().filter(|&s| s > 0).collect();
        if n >= c {
            let min = used.iter().min().copied().unwrap_or(0);
            let max = used.iter().max().copied().unwrap_or(0);
            prop_assert!(max - min <= 1, "sizes {:?}", sizes);
        }
        // group index is monotone in attribute sum
        let sum = |i: usize| points[2 * i] + points[2 * i + 1];
        for i in 0..n {
            for j in 0..n {
                if sum(i) < sum(j) {
                    prop_assert!(groups[i] <= groups[j]);
                }
            }
        }
    }

    #[test]
    fn subset_roundtrip(points in flat_points(2, 30)) {
        if points.len() < 4 { return Ok(()); }
        let ds = Dataset::ungrouped("s", 2, points).unwrap();
        let rows: Vec<usize> = (0..ds.len()).step_by(2).collect();
        let sub = ds.subset(&rows);
        prop_assert_eq!(sub.len(), rows.len());
        for (local, &global) in rows.iter().enumerate() {
            prop_assert_eq!(sub.point(local), ds.point(global));
        }
    }
}
