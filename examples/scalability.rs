//! Scalability walkthrough: BiGreedy vs BiGreedy+ on anti-correlated data
//! of growing size and dimension (the regime of the paper's Figure 7).
//!
//! Run with: `cargo run --release --example scalability`

#![allow(clippy::disallowed_methods)] // examples print wall-clock timings for the reader
use std::time::Instant;

use rand::rngs::StdRng;
use rand::SeedableRng;

use fairhms::data::gen::anti_correlated_dataset;
use fairhms::geometry::sphere::random_net;
use fairhms::prelude::*;

fn main() {
    let k = 10;
    let c = 3;
    println!(
        "{:>8} {:>3} | {:>12} {:>9} | {:>12} {:>9}",
        "n", "d", "BiGreedy", "mhr", "BiGreedy+", "mhr"
    );

    for (n, d) in [
        (1_000usize, 4usize),
        (5_000, 4),
        (20_000, 4),
        (5_000, 6),
        (5_000, 8),
    ] {
        let mut rng = StdRng::seed_from_u64(7);
        let data = anti_correlated_dataset(n, d, c, &mut rng);
        let sky = group_skyline_indices(&data);
        let input = std::sync::Arc::new(data.subset(&sky));
        let (lower, upper) = proportional_bounds(&input.group_sizes(), k, 0.1);
        let inst = FairHmsInstance::new(std::sync::Arc::clone(&input), k, lower, upper).unwrap();
        // One shared evaluation net so the quality columns are comparable
        // (each algorithm's own estimate lives on a different-sized net).
        let eval = NetEvaluator::new(&input, random_net(d, 2_000, &mut rng));

        let t = Instant::now();
        let bg = bigreedy(&inst, &BiGreedyConfig::paper_default(k, d)).unwrap();
        let t_bg = t.elapsed();

        let t = Instant::now();
        let bgp = bigreedy_plus(&inst, &BiGreedyPlusConfig::paper_default(k, d)).unwrap();
        let t_bgp = t.elapsed();

        println!(
            "{:>8} {:>3} | {:>12?} {:>9.4} | {:>12?} {:>9.4}",
            n,
            d,
            t_bg,
            eval.mhr(&input, &bg.indices),
            t_bgp,
            eval.mhr(&input, &bgp.indices)
        );
        assert!(inst.matroid().is_feasible(&bg.indices));
        assert!(inst.matroid().is_feasible(&bgp.indices));
    }
    println!("\nBoth algorithms stay feasible throughout; BiGreedy+ trades a\nlittle estimated quality for substantially smaller utility samples.");
}
