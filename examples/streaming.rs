//! Streaming FairHMS: selecting a fair representative set in two passes
//! over data too large to buffer, and comparing against the offline
//! algorithms — the extension direction of Halabi et al.'s streaming fair
//! submodular maximization, on which the paper's fairness matroid is built.
//!
//! Run with: `cargo run --release --example streaming`

#![allow(clippy::disallowed_methods)] // examples print wall-clock timings for the reader
use std::sync::Arc;
use std::time::Instant;

use rand::rngs::StdRng;
use rand::SeedableRng;

use fairhms::core::streaming::{streaming_fairhms, StreamingFairHmsConfig};
use fairhms::data::gen::anti_correlated_dataset;
use fairhms::geometry::sphere::random_net;
use fairhms::prelude::*;

fn main() {
    let k = 12;
    let d = 5;
    let mut rng = StdRng::seed_from_u64(3);
    let data = Arc::new(anti_correlated_dataset(50_000, d, 4, &mut rng));
    println!(
        "anti-correlated stream: n = {}, d = {d}, C = {}",
        data.len(),
        data.num_groups()
    );

    // Streaming mode consumes the RAW dataset — no skyline buffer needed.
    let (lower, upper) = proportional_bounds(&data.group_sizes(), k, 0.1);
    let inst = FairHmsInstance::new(Arc::clone(&data), k, lower.clone(), upper.clone()).unwrap();
    let eval = NetEvaluator::new(&data, random_net(d, 2_000, &mut rng));

    let t = Instant::now();
    let streamed = streaming_fairhms(&inst, &StreamingFairHmsConfig::default()).unwrap();
    let t_stream = t.elapsed();
    println!(
        "\nstreaming (2 passes, no buffer): mhr ≈ {:.4}  err = {}  [{t_stream:?}]",
        eval.mhr(&data, &streamed.indices),
        inst.matroid().violations(&streamed.indices),
    );

    // Offline BiGreedy gets the skyline restriction (requires buffering).
    // The bounds stay those of the *raw* population — representation
    // targets are about the original data, not the skyline sample.
    let sky = group_skyline_indices(&data);
    let input = Arc::new(data.subset(&sky));
    let off_inst = FairHmsInstance::new(Arc::clone(&input), k, lower, upper).unwrap();
    let t = Instant::now();
    let offline = bigreedy(&off_inst, &BiGreedyConfig::paper_default(k, d)).unwrap();
    let t_off = t.elapsed();
    // map back for a common evaluation basis
    let offline_global: Vec<usize> = offline.indices.iter().map(|&i| sky[i]).collect();
    println!(
        "offline BiGreedy (skyline buffer of {} pts): mhr ≈ {:.4}  err = {}  [{t_off:?} + skyline time]",
        input.len(),
        eval.mhr(&data, &offline_global),
        inst.matroid().violations(&offline_global),
    );

    println!("\nThe one-pass swap algorithm stays fair and lands within a small\nconstant of the offline greedy while never materializing the skyline.");
}
