//! Admissions scenario: proportional representation on the simulated
//! Lawschs dataset (65,494 applicants, LSAT × GPA, grouped by race).
//!
//! Demonstrates the full production pipeline:
//!  1. load/simulate the dataset and normalize it;
//!  2. restrict to the union of per-group skylines (lossless);
//!  3. derive proportional fairness bounds (Section 5.1 of the paper);
//!  4. run the exact solver and the approximation algorithms;
//!  5. report MHR, fairness violations, and the price of fairness.
//!
//! Run with: `cargo run --release --example admissions`

#![allow(clippy::disallowed_methods)] // examples print wall-clock timings for the reader
use std::sync::Arc;
use std::time::Instant;

use fairhms::core::adapt::f_greedy;
use fairhms::core::baselines::rdp_greedy;
use fairhms::prelude::*;

fn main() {
    let k = 4;
    let alpha = 0.1;

    let mut data = fairhms::data::realsim::lawschs(1)
        .dataset(&["race"])
        .unwrap();
    data.normalize();
    println!(
        "Lawschs (simulated): n = {}, d = {}, C = {} race groups",
        data.len(),
        data.dim(),
        data.num_groups()
    );

    // Lossless restriction to the union of per-group skylines.
    let sky = group_skyline_indices(&data);
    let input = Arc::new(data.subset(&sky)); // shared by both instances below
    println!("per-group skyline union: {} points", input.len());

    let (lower, upper) = proportional_bounds(&input.group_sizes(), k, alpha);
    println!("proportional bounds (α = {alpha}): l = {lower:?}, h = {upper:?}");
    let inst = FairHmsInstance::new(Arc::clone(&input), k, lower, upper).unwrap();

    // Unconstrained optimum for the price-of-fairness reference.
    let unconstrained = FairHmsInstance::unconstrained(Arc::clone(&input), k).unwrap();
    let t = Instant::now();
    let opt_unfair = intcov(&unconstrained).unwrap();
    println!(
        "\nunconstrained IntCov  : mhr = {:.4}  err = {:>2}  [{:?}]",
        opt_unfair.mhr.unwrap(),
        inst.matroid().violations(&opt_unfair.indices),
        t.elapsed()
    );

    let t = Instant::now();
    let exact = intcov(&inst).unwrap();
    println!(
        "fair IntCov (exact)   : mhr = {:.4}  err = {:>2}  [{:?}]",
        exact.mhr.unwrap(),
        inst.matroid().violations(&exact.indices),
        t.elapsed()
    );

    let t = Instant::now();
    let bg = bigreedy(&inst, &BiGreedyConfig::paper_default(k, 2)).unwrap();
    println!(
        "BiGreedy              : mhr = {:.4}  err = {:>2}  [{:?}]",
        mhr_exact_2d(&input, &bg.indices),
        inst.matroid().violations(&bg.indices),
        t.elapsed()
    );

    let t = Instant::now();
    let bgp = bigreedy_plus(&inst, &BiGreedyPlusConfig::paper_default(k, 2)).unwrap();
    println!(
        "BiGreedy+             : mhr = {:.4}  err = {:>2}  [{:?}]",
        mhr_exact_2d(&input, &bgp.indices),
        inst.matroid().violations(&bgp.indices),
        t.elapsed()
    );

    let t = Instant::now();
    let fg = f_greedy(&inst).unwrap();
    println!(
        "F-Greedy              : mhr = {:.4}  err = {:>2}  [{:?}]",
        mhr_exact_2d(&input, &fg.indices),
        inst.matroid().violations(&fg.indices),
        t.elapsed()
    );

    // What happens if fairness is ignored? (Figure 3's point.)
    let t = Instant::now();
    let unfair = rdp_greedy(&input, k).unwrap();
    println!(
        "unfair Greedy         : mhr = {:.4}  err = {:>2}  [{:?}]",
        mhr_exact_2d(&input, &unfair),
        inst.matroid().violations(&unfair),
        t.elapsed()
    );

    println!(
        "\nPrice of fairness: {:.4} (a {:.2}% MHR decrease buys zero violations)",
        opt_unfair.mhr.unwrap() - exact.mhr.unwrap(),
        100.0 * (opt_unfair.mhr.unwrap() - exact.mhr.unwrap()) / opt_unfair.mhr.unwrap()
    );
}
