//! Quickstart: the paper's running example (Table 1 / Example 2.2).
//!
//! Selects representative law-school applicants from the 8-row LSAC sample
//! with and without a gender-fairness constraint, using the exact 2D
//! solver, and prints what changes.
//!
//! Run with: `cargo run --example quickstart`

use std::sync::Arc;

use fairhms::prelude::*;

fn main() {
    let table = fairhms::data::realsim::lsac_example();
    println!(
        "LSAC sample (Table 1 of the paper): {} applicants",
        table.len()
    );

    let mut data = table.dataset(&["gender"]).unwrap();
    data.normalize(); // scale-only; preserves every happiness ratio
    let data = Arc::new(data); // instances below share it, no copies

    let names = ["a1", "a2", "a3", "a4", "a5", "a6", "a7", "a8"];
    let describe = |data: &Dataset, sol: &Solution| -> String {
        sol.indices
            .iter()
            .map(|&i| {
                format!(
                    "{} ({})",
                    names[i],
                    data.group_names()[data.group_of(i)].clone()
                )
            })
            .collect::<Vec<_>>()
            .join(", ")
    };

    // Vanilla HMS: k = 2, no constraints.
    let unconstrained = FairHmsInstance::unconstrained(Arc::clone(&data), 2).unwrap();
    let hms = intcov(&unconstrained).unwrap();
    println!(
        "\nHMS (k = 2, unconstrained) : {{{}}}  mhr = {:.4}",
        describe(&data, &hms),
        hms.mhr.unwrap()
    );

    // FairHMS: exactly one applicant per gender.
    let fair = FairHmsInstance::new(Arc::clone(&data), 2, vec![1, 1], vec![1, 1]).unwrap();
    let fairhms = intcov(&fair).unwrap();
    println!(
        "FairHMS (one per gender)   : {{{}}}  mhr = {:.4}",
        describe(&data, &fairhms),
        fairhms.mhr.unwrap()
    );
    println!(
        "\nPrice of fairness: {:.4} → {:.4} (Δ = {:.4})",
        hms.mhr.unwrap(),
        fairhms.mhr.unwrap(),
        hms.mhr.unwrap() - fairhms.mhr.unwrap()
    );

    // The violation count the paper's Figure 3 tracks.
    let err_unfair = fair.matroid().violations(&hms.indices);
    let err_fair = fair.matroid().violations(&fairhms.indices);
    println!("err(HMS solution) = {err_unfair}, err(FairHMS solution) = {err_fair}");

    // BiGreedy reaches nearly the same quality without 2D-specific machinery.
    let bg = bigreedy(&fair, &BiGreedyConfig::paper_default(2, 2)).unwrap();
    println!(
        "\nBiGreedy (δ-net, any d)    : {{{}}}  mhr(S|N) = {:.4}, exact = {:.4}",
        describe(&data, &bg),
        bg.mhr.unwrap(),
        mhr_exact_2d(&data, &bg.indices)
    );
}
