//! Sharded catalog walkthrough: prepare one dataset at several shard
//! counts, print the per-shard work breakdown, and verify the merged
//! skyline — and a served answer — are bit-identical at every shard
//! count.
//!
//! The per-shard pass times show the parallelizable fraction: on a
//! machine with ≥ `shards` cores the wall-clock of the skyline stage
//! approaches `max(shard µs)` instead of `sum(shard µs)`.
//!
//! Run with: `cargo run --release --example sharded_catalog`

#![allow(clippy::disallowed_methods)] // examples print wall-clock timings for the reader
use std::sync::Arc;

use rand::rngs::StdRng;
use rand::SeedableRng;

use fairhms::data::gen;
use fairhms::prelude::*;
use fairhms::service::{CatalogConfig, PreparedDataset};

fn dataset(n: usize) -> Dataset {
    let mut rng = StdRng::seed_from_u64(23);
    let d = 3;
    let points = gen::uniform(n, d, &mut rng);
    let groups = gen::groups_by_sum(&points, d, 4);
    Dataset::new("demo", d, points, groups, vec![]).unwrap()
}

fn main() {
    let n = 100_000;
    println!("preparing n={n} d=3 C=4 at shard counts 1/2/4/8\n");

    // Per-shard *work* breakdown, measured sequentially (one pass at a
    // time) so the numbers are true single-pass costs, not wall spans
    // inflated by thread interleaving on an oversubscribed machine.
    {
        use fairhms::data::shard::{merge_shard_skylines, PartitionStrategy, ShardPlan};
        use fairhms::data::skyline::{bucket_rows_by_group, bucket_skyline, group_skyline_of_rows};
        use std::time::Instant;

        let mut data = dataset(n);
        data.normalize();
        let mut reference: Option<Vec<usize>> = None;
        for shards in [1usize, 2, 4, 8] {
            let plan = ShardPlan::build(&data, shards, PartitionStrategy::GroupStratified);
            let mut micros = Vec::with_capacity(plan.num_shards());
            let mut per_shard = Vec::with_capacity(plan.num_shards());
            for s in 0..plan.num_shards() {
                let t = Instant::now();
                per_shard.push(group_skyline_of_rows(&data, plan.rows(s)));
                micros.push(t.elapsed().as_micros() as u64);
            }
            let t = Instant::now();
            let merged = merge_shard_skylines(&data, &per_shard);
            let merge_micros = t.elapsed().as_micros() as u64;
            // The catalog's merge parallelizes across groups; its ideal
            // wall is the costliest single group's reduction.
            let merge_group_max = if shards == 1 {
                merge_micros
            } else {
                let mut union: Vec<usize> = per_shard.iter().flatten().copied().collect();
                union.sort_unstable();
                bucket_rows_by_group(&data, &union)
                    .iter()
                    .filter(|b| !b.is_empty())
                    .map(|b| {
                        let t = Instant::now();
                        let _ = bucket_skyline(&data, b);
                        t.elapsed().as_micros() as u64
                    })
                    .max()
                    .unwrap_or(0)
            };
            println!(
                "shards={shards}: skyline passes sum={:>7} µs, max={:>7} µs | merge {:>6} µs \
                 (max group {:>5} µs) | {} rows (stage wall, enough cores ≈ pass max + group max)",
                micros.iter().sum::<u64>(),
                micros.iter().copied().max().unwrap_or(0),
                merge_micros,
                merge_group_max,
                merged.len(),
            );
            match &reference {
                None => reference = Some(merged),
                Some(r) => assert_eq!(r, &merged, "merged skyline diverged at shards={shards}"),
            }
        }
    }

    // End-to-end catalog preparation (threaded path), as `serve` runs it.
    println!();
    for shards in [1usize, 8] {
        let cfg = CatalogConfig::with_shards(shards);
        let prep = PreparedDataset::prepare_with("demo", dataset(n), &cfg).unwrap();
        println!(
            "catalog prepare_with shards={shards}: {} µs total",
            prep.prep_micros
        );
    }

    // Served answers are identical too: same query against a 1-shard and
    // an 8-shard catalog.
    let answers: Vec<_> = [1usize, 8]
        .into_iter()
        .map(|shards| {
            let catalog = Arc::new(Catalog::with_config(CatalogConfig::with_shards(shards)));
            catalog.insert_dataset(dataset(n)).unwrap();
            let engine = QueryEngine::new(catalog, 64);
            let q = Query::new("demo", 8);
            engine.execute(&q).unwrap().answer
        })
        .collect();
    assert_eq!(answers[0].indices, answers[1].indices);
    assert_eq!(
        answers[0].mhr.map(f64::to_bits),
        answers[1].mhr.map(f64::to_bits)
    );
    println!(
        "\nserved answer identical at 1 and 8 shards: rows {:?} mhr {:?}",
        answers[0].indices, answers[0].mhr
    );
}
