//! Price-of-fairness study: how the MHR degrades as the fairness bounds
//! tighten (sweeping the slack α and comparing proportional vs balanced
//! representation) on the simulated Adult dataset grouped by race.
//!
//! Run with: `cargo run --release --example price_of_fairness`

use std::sync::Arc;

use fairhms::prelude::*;

fn main() {
    let k = 12;
    let mut data = fairhms::data::realsim::adult(1).dataset(&["race"]).unwrap();
    data.normalize();
    let sky = group_skyline_indices(&data);
    let input = Arc::new(data.subset(&sky)); // one allocation, many instances
    println!(
        "Adult (simulated) by race: n = {}, skyline union = {}, C = {}",
        data.len(),
        input.len(),
        input.num_groups()
    );
    let sizes = input.group_sizes();
    println!("group sizes on the skyline union: {sizes:?}\n");

    // Unconstrained reference.
    let unconstrained = FairHmsInstance::unconstrained(Arc::clone(&input), k).unwrap();
    let reference = bigreedy(
        &unconstrained,
        &BiGreedyConfig::paper_default(k, input.dim()),
    )
    .unwrap();
    let ref_mhr = mhr_exact_lp(&input, &reference.indices);
    println!("unconstrained BiGreedy reference: mhr = {ref_mhr:.4}\n");

    println!(
        "{:>6} | {:>14} {:>8} | {:>14} {:>8}",
        "α", "proportional", "Δ", "balanced", "Δ"
    );
    for alpha in [0.5, 0.3, 0.2, 0.1, 0.05] {
        let (lp_, hp) = proportional_bounds(&sizes, k, alpha);
        let (lb, hb) = balanced_bounds(&sizes, k, alpha);
        let prop = FairHmsInstance::new(Arc::clone(&input), k, lp_, hp)
            .map(|inst| {
                let sol = bigreedy(&inst, &BiGreedyConfig::paper_default(k, input.dim())).unwrap();
                mhr_exact_lp(&input, &sol.indices)
            })
            .ok();
        let bal = FairHmsInstance::new(Arc::clone(&input), k, lb, hb)
            .map(|inst| {
                let sol = bigreedy(&inst, &BiGreedyConfig::paper_default(k, input.dim())).unwrap();
                mhr_exact_lp(&input, &sol.indices)
            })
            .ok();
        let fmt = |v: Option<f64>| match v {
            Some(x) => format!("{x:>14.4}"),
            None => format!("{:>14}", "infeasible"),
        };
        let delta = |v: Option<f64>| match v {
            Some(x) => format!("{:>8.4}", ref_mhr - x),
            None => format!("{:>8}", "-"),
        };
        println!(
            "{alpha:>6} | {} {} | {} {}",
            fmt(prop),
            delta(prop),
            fmt(bal),
            delta(bal)
        );
    }
    println!("\nTighter bounds (smaller α) and balanced representation cost more\nMHR — but the decrease stays small, matching the paper's conclusion\nthat the price of fairness is low.");
}
