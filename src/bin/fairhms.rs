//! `fairhms` — command-line interface to the FairHMS library.
//!
//! ```text
//! fairhms gen    --out data.csv --n 10000 --d 4 --c 3 [--kind anticor|uniform|correlated] [--seed 1]
//! fairhms stats  --input data.csv --dim 4
//! fairhms solve  --input data.csv --dim 4 --k 10 [--alg bigreedy] [--alpha 0.1]
//!                [--balanced] [--no-skyline] [--seed 42]
//! ```
//!
//! `solve` prints the selected rows (0-based indices into the input file),
//! the evaluated MHR, the fairness-violation count, and wall-clock time.
//! Algorithms: `intcov` (exact, 2D only), `bigreedy`, `bigreedy+`,
//! `f-greedy`, `g-greedy`, `g-dmm`, `g-hs`, `g-sphere`, `streaming`.

#![allow(clippy::disallowed_methods)] // the CLI reports wall-clock solve time to the user by design
use std::collections::HashMap;
use std::path::PathBuf;
use std::process::ExitCode;
use std::time::Instant;

use rand::rngs::StdRng;
use rand::SeedableRng;

use fairhms::core::registry::{self, AlgorithmParams};
use fairhms::core::types::{CandidateSet, FairHmsInstance, Solution};
use fairhms::data::gen;
use fairhms::data::skyline::group_skyline_indices;
use fairhms::data::stats::DatasetStats;
use fairhms::matroid::{balanced_bounds, proportional_bounds};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some((cmd, rest)) = args.split_first() else {
        eprintln!("{USAGE}");
        return ExitCode::FAILURE;
    };
    let opts = match parse_flags(rest) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("error: {e}\n\n{USAGE}");
            return ExitCode::FAILURE;
        }
    };
    let run = match cmd.as_str() {
        "gen" => cmd_gen(&opts),
        "stats" => cmd_stats(&opts),
        "solve" => cmd_solve(&opts),
        "serve" => cmd_serve(&opts),
        "query" => cmd_query(&opts),
        "append" => cmd_append(&opts),
        "delete" => cmd_delete(&opts),
        "metrics" => cmd_metrics(&opts),
        "help" | "--help" | "-h" => {
            println!("{USAGE}");
            return ExitCode::SUCCESS;
        }
        other => Err(format!("unknown command {other:?}")),
    };
    match run {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

const USAGE: &str = "fairhms — happiness maximizing sets under group fairness constraints

USAGE:
  fairhms gen   --out FILE --n N --d D --c C [--kind anticor|uniform|correlated] [--seed S]
  fairhms stats --input FILE --dim D
  fairhms solve --input FILE --dim D --k K [--alg NAME] [--alpha A] [--balanced]
                [--no-skyline] [--seed S]
  fairhms serve --data NAME=FILE[,NAME=FILE...] [--addr HOST:PORT] [--workers N]
                [--cache N] [--shards N] [--strategy roundrobin|stratified]
                [--load-root DIR] [--max-streams N] [--no-warmstart]
                [--warm-capacity N] [--no-telemetry] [--slow-query-ms N]
                [--frontend event|threaded] [--max-conns N] [--queue-depth N]
  fairhms query --addr HOST:PORT (--dataset NAME --k K [--alg NAME] [--alpha A]
                [--balanced] [--no-skyline] [--seed S] | --file FILE [--stream])
                [--codec text|binary] [--show-stats]
  fairhms append --addr HOST:PORT --dataset NAME --row C1,...,CD --group G
                 [--codec text|binary]
  fairhms delete --addr HOST:PORT --dataset NAME --row ID [--codec text|binary]
  fairhms metrics --addr HOST:PORT [--codec text|binary]

ALGORITHMS (for --alg):
  intcov bigreedy bigreedy+ f-greedy g-greedy g-dmm g-hs g-sphere streaming
  greedy dmm hs sphere (unfair baselines)

`serve` loads each CSV once (dimensionality sniffed from the first row),
precomputes group skylines — partitioned across --shards parallel prep
threads; answers are bit-identical for every shard count — and answers the
protocol documented in docs/PROTOCOL.md. --load-root DIR allows the LOAD
admin verb to register CSVs under DIR at runtime; --max-streams caps
concurrent streamed batches (excess answered ERR busy). `append` and
`delete` mutate a served dataset in place through the APPEND/DELETE wire
verbs: skylines are maintained incrementally and only cached answers
whose digest the mutation moved are invalidated. Near-miss queries
(same dataset, k and algorithm; different bounds) reuse warm-start state
(BiGreedy δ-nets, prepared bounds scans) — answers are bit-identical
either way; --no-warmstart disables the tier and --warm-capacity bounds
its resident entries. Per-stage latency histograms are recorded by
default (answers are bit-identical with telemetry on or off);
--no-telemetry disables them and --slow-query-ms N logs one structured
stderr line per query slower than N ms. --frontend event swaps the
thread-per-connection accept loop for a poll(2)-driven multiplexer with
a resident solve worker pool and full admission control: --max-conns
caps open connections and --queue-depth bounds the global solve queue
(excess load answers ERR busy with retry_after_ms back-off advice;
answers stay bit-identical to the threaded front end). `metrics` dumps a running
server's telemetry snapshot via the METRICS verb. `query` is the
matching client: --codec binary negotiates the v2 length-prefixed framing
(answers are bit-identical to text), and --file sends a BATCH of QUERY
lines through the server's thread pool — with --stream the answers are
printed as the server completes them (seq-tagged) instead of in request
order.

INPUT FORMAT: CSV rows `attr_1,...,attr_D,group_label` (no header).";

fn parse_flags(args: &[String]) -> Result<HashMap<String, String>, String> {
    let mut out = HashMap::new();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        let Some(key) = a.strip_prefix("--") else {
            return Err(format!("unexpected argument {a:?}"));
        };
        match key {
            // boolean flags
            "balanced" | "no-skyline" | "show-stats" | "stream" | "no-warmstart"
            | "no-telemetry" => {
                out.insert(key.to_string(), "true".to_string());
            }
            _ => {
                let v = it.next().ok_or_else(|| format!("--{key} needs a value"))?;
                out.insert(key.to_string(), v.clone());
            }
        }
    }
    Ok(out)
}

fn req<'a>(opts: &'a HashMap<String, String>, key: &str) -> Result<&'a str, String> {
    opts.get(key)
        .map(|s| s.as_str())
        .ok_or_else(|| format!("missing required flag --{key}"))
}

fn num<T: std::str::FromStr>(
    opts: &HashMap<String, String>,
    key: &str,
) -> Result<Option<T>, String> {
    match opts.get(key) {
        None => Ok(None),
        Some(v) => v
            .parse::<T>()
            .map(Some)
            .map_err(|_| format!("--{key}: cannot parse {v:?}")),
    }
}

fn cmd_gen(opts: &HashMap<String, String>) -> Result<(), String> {
    let out = PathBuf::from(req(opts, "out")?);
    let n: usize = num(opts, "n")?.ok_or("missing --n")?;
    let d: usize = num(opts, "d")?.ok_or("missing --d")?;
    let c: usize = num(opts, "c")?.ok_or("missing --c")?;
    let seed: u64 = num(opts, "seed")?.unwrap_or(1);
    let kind = opts.get("kind").map(|s| s.as_str()).unwrap_or("anticor");
    let mut rng = StdRng::seed_from_u64(seed);
    let points = match kind {
        "anticor" => gen::anti_correlated(n, d, &mut rng),
        "uniform" => gen::uniform(n, d, &mut rng),
        "correlated" => gen::correlated(n, d, 0.6, &mut rng),
        other => return Err(format!("unknown --kind {other:?}")),
    };
    let groups = gen::groups_by_sum(&points, d, c);
    let data = fairhms::data::Dataset::new(
        format!("{kind}_{d}d"),
        d,
        points,
        groups,
        (0..c).map(|g| format!("g{g}")).collect(),
    )
    .map_err(|e| e.to_string())?;
    fairhms::data::csv::write_dataset(&out, &data).map_err(|e| e.to_string())?;
    println!(
        "wrote {} rows ({kind}, d={d}, C={c}) to {}",
        n,
        out.display()
    );
    Ok(())
}

fn load(opts: &HashMap<String, String>) -> Result<fairhms::data::Dataset, String> {
    let input = PathBuf::from(req(opts, "input")?);
    let dim: usize = num(opts, "dim")?.ok_or("missing --dim")?;
    let mut data =
        fairhms::data::csv::read_dataset(&input, "input", dim).map_err(|e| e.to_string())?;
    data.normalize();
    Ok(data)
}

fn cmd_stats(opts: &HashMap<String, String>) -> Result<(), String> {
    let data = load(opts)?;
    let st = DatasetStats::compute(&data);
    println!("{}", st.table_row());
    for (g, (size, sky)) in st.group_sizes.iter().zip(&st.group_skylines).enumerate() {
        println!(
            "  group {:<12} |D_c| = {:<8} skyline = {}",
            data.group_names()[g],
            size,
            sky
        );
    }
    Ok(())
}

fn cmd_solve(opts: &HashMap<String, String>) -> Result<(), String> {
    let data = load(opts)?;
    let k: usize = num(opts, "k")?.ok_or("missing --k")?;
    let alpha: f64 = num(opts, "alpha")?.unwrap_or(0.1);
    let seed: u64 = num(opts, "seed")?.unwrap_or(42);
    let alg_name = opts.get("alg").map(|s| s.as_str()).unwrap_or("bigreedy");

    // Candidate-set seam (shared with the serving engine): skyline
    // restriction (lossless) unless disabled, carrying the map back to
    // original row ids.
    let cand = if opts.contains_key("no-skyline") {
        CandidateSet::full(std::sync::Arc::new(data))
    } else {
        let sky = group_skyline_indices(&data);
        CandidateSet::restrict(&data, &sky)
    };
    let input = cand.data();

    let (lower, upper) = if opts.contains_key("balanced") {
        balanced_bounds(&input.group_sizes(), k, alpha)
    } else {
        proportional_bounds(&input.group_sizes(), k, alpha)
    };
    println!("bounds: l = {lower:?}, h = {upper:?}");
    // The instance and the evaluation below share the candidate
    // allocation (no matrix copy).
    let inst = FairHmsInstance::new(std::sync::Arc::clone(input), k, lower, upper)
        .map_err(|e| e.to_string())?;

    let params = AlgorithmParams {
        seed,
        ..AlgorithmParams::default()
    };
    let alg = registry::by_name(alg_name, &params).map_err(|e| e.to_string())?;
    let t = Instant::now();
    let sol: Solution = alg.solve(&inst).map_err(|e| e.to_string())?;
    let elapsed = t.elapsed();

    let mhr = if input.dim() == 2 {
        fairhms::core::eval::mhr_exact_2d(input, &sol.indices)
    } else {
        fairhms::core::eval::mhr_exact_lp(input, &sol.indices)
    };
    let err = inst.matroid().violations(&sol.indices);
    println!("algorithm : {alg_name}");
    println!("rows      : {:?}", cand.to_original(&sol.indices));
    println!("mhr       : {mhr:.6}");
    println!("err(S)    : {err}");
    println!("time      : {elapsed:?}");
    Ok(())
}

/// `fairhms serve`: load datasets into a catalog and run the TCP front end
/// in the foreground until a client sends SHUTDOWN (or the process is
/// killed).
fn cmd_serve(opts: &HashMap<String, String>) -> Result<(), String> {
    use fairhms::data::shard::PartitionStrategy;
    use fairhms::service::{
        Catalog, CatalogConfig, FrontendKind, QueryEngine, ServeOptions, Server, ServerConfig,
        MAX_SHARDS,
    };
    use std::sync::Arc;

    let specs = req(opts, "data")?;
    let addr = opts
        .get("addr")
        .cloned()
        .unwrap_or_else(|| "127.0.0.1:4077".to_string());
    let workers: usize = num(opts, "workers")?.unwrap_or(4);
    let cache: usize = num(opts, "cache")?.unwrap_or(1024);
    let mut cfg = CatalogConfig::default();
    if let Some(shards) = num::<usize>(opts, "shards")? {
        if !(1..=MAX_SHARDS).contains(&shards) {
            return Err(format!(
                "--shards must be in 1..={MAX_SHARDS}, got {shards}"
            ));
        }
        cfg.shards = shards;
    }
    if let Some(strat) = opts.get("strategy") {
        cfg.strategy = PartitionStrategy::parse(strat)
            .ok_or_else(|| format!("--strategy: expected roundrobin|stratified, got {strat:?}"))?;
    }

    let mut warm = fairhms::service::WarmConfig::from_env();
    if opts.contains_key("no-warmstart") {
        warm.enabled = false;
    }
    if let Some(n) = num::<usize>(opts, "warm-capacity")? {
        warm.capacity = n;
    }

    let mut telemetry = fairhms::service::TelemetryConfig::from_env();
    if opts.contains_key("no-telemetry") {
        telemetry.enabled = false;
    }

    let catalog = Arc::new(Catalog::with_config(cfg));
    // The engine wires the telemetry registry into the catalog, so build
    // it before loading datasets: initial prep/merge spans are recorded.
    let engine = Arc::new(QueryEngine::with_config(
        Arc::clone(&catalog),
        cache,
        warm,
        telemetry,
    ));
    for spec in specs.split(',').filter(|s| !s.is_empty()) {
        let (name, path) = spec
            .split_once('=')
            .ok_or_else(|| format!("--data: expected NAME=FILE, got {spec:?}"))?;
        let t = Instant::now();
        let prep = catalog
            .load_csv(name, &PathBuf::from(path))
            .map_err(|e| e.to_string())?;
        println!(
            "loaded {:<16} n={:<8} d={} groups={} skyline={} shards={} ({:?})",
            prep.name,
            prep.dataset.len(),
            prep.dataset.dim(),
            prep.dataset.num_groups(),
            prep.skyline_rows.len(),
            prep.num_shards(),
            t.elapsed()
        );
    }
    if catalog.is_empty() {
        return Err("no datasets loaded (use --data NAME=FILE)".into());
    }

    let mut serve_opts = ServeOptions::default();
    if let Some(root) = opts.get("load-root") {
        let root = PathBuf::from(root);
        if !root.is_dir() {
            return Err(format!(
                "--load-root: {} is not a directory",
                root.display()
            ));
        }
        serve_opts.load_root = Some(root);
    }
    if let Some(n) = num::<usize>(opts, "max-streams")? {
        serve_opts.max_stream_batches = n;
    }
    if let Some(f) = opts.get("frontend") {
        serve_opts.frontend = FrontendKind::parse(f)
            .ok_or_else(|| format!("--frontend: expected event or threaded, got {f:?}"))?;
    }
    if let Some(n) = num::<usize>(opts, "max-conns")? {
        serve_opts.max_conns = n;
    }
    if let Some(n) = num::<usize>(opts, "queue-depth")? {
        serve_opts.queue_depth = n;
    }
    serve_opts.telemetry = telemetry;
    serve_opts.slow_query_ms = num::<u64>(opts, "slow-query-ms")?;

    let shards = cfg.shards;
    let strategy = cfg.strategy;
    let load_root = serve_opts.load_root.clone();
    let max_streams = serve_opts.max_stream_batches;
    let frontend_banner = match serve_opts.frontend {
        FrontendKind::Threaded => "threaded front end".to_string(),
        FrontendKind::Event => format!(
            "event front end ({} max conns, queue depth {})",
            serve_opts.max_conns, serve_opts.queue_depth
        ),
    };
    let warm_banner = if warm.enabled {
        format!("warm-start {} entries", warm.capacity)
    } else {
        "warm-start off".to_string()
    };
    let telemetry_banner = match (telemetry.enabled, serve_opts.slow_query_ms) {
        (false, _) => ", telemetry off".to_string(),
        (true, None) => ", telemetry on".to_string(),
        (true, Some(ms)) => format!(", telemetry on, slow-query log >{ms}ms"),
    };
    let server = Server::spawn_with(engine, ServerConfig { addr, workers }, serve_opts)
        .map_err(|e| e.to_string())?;
    println!(
        "fairhms-service listening on {} ({}, {} batch workers, cache {} answers, \
         {} prep shards [{}], {} max streams, {}{}{})",
        server.addr(),
        frontend_banner,
        workers,
        cache,
        shards,
        strategy,
        max_streams,
        warm_banner,
        telemetry_banner,
        match &load_root {
            Some(r) => format!(", LOAD root {}", r.display()),
            None => ", LOAD disabled".to_string(),
        }
    );
    server.join();
    println!("server stopped");
    Ok(())
}

/// `fairhms query`: one-shot client for a running `fairhms serve`.
///
/// Built on the service crate's typed [`fairhms::service::WireClient`]:
/// `--codec binary` negotiates the v2 length-prefixed framing via
/// `HELLO`; without the flag the client is a plain v1 text client.
/// Output is identical under both codecs (responses are re-rendered
/// through the v1 text encoding for display).
fn cmd_query(opts: &HashMap<String, String>) -> Result<(), String> {
    use fairhms::service::protocol::{encode_response_line, Response};
    use fairhms::service::{CodecKind, Query, WireClient};

    let addr = req(opts, "addr")?;
    let mut client = match opts.get("codec") {
        None => WireClient::connect(addr),
        Some(c) => {
            let kind = CodecKind::parse(c)
                .ok_or_else(|| format!("--codec: expected text|binary, got {c:?}"))?;
            WireClient::negotiate(addr, kind)
        }
    }
    .map_err(|e| format!("connect {addr}: {e}"))?;

    if let Some(file) = opts.get("file") {
        // Batch mode: every non-empty, non-comment line is a query.
        let text = std::fs::read_to_string(file).map_err(|e| format!("{file}: {e}"))?;
        let lines: Vec<String> = text
            .lines()
            .map(str::trim)
            .filter(|l| !l.is_empty() && !l.starts_with('#'))
            .map(|l| {
                if l.to_ascii_uppercase().starts_with("QUERY") {
                    l.to_string()
                } else {
                    format!("QUERY {l}")
                }
            })
            .collect();
        let stream = opts.contains_key("stream");
        let header = if stream {
            format!("BATCH {} stream=true", lines.len())
        } else {
            format!("BATCH {}", lines.len())
        };
        let mut block = header;
        for l in &lines {
            block.push('\n');
            block.push_str(l);
        }
        client.send_line(&block).map_err(|e| e.to_string())?;
        match client.recv().map_err(|e| e.to_string())? {
            Response::BatchHeader { n, .. } if n == lines.len() => {}
            Response::Error { message, .. } => return Err(format!("batch rejected: {message}")),
            other => return Err(format!("unexpected batch header: {other:?}")),
        }
        let (mut hits, mut errs) = (0usize, 0usize);
        for i in 0..lines.len() {
            let resp = client.recv().map_err(|e| e.to_string())?;
            // `seq` maps a streamed (completion-order) answer back to its
            // request line; buffered answers arrive in request order.
            let (seq, is_err, cached) = match &resp {
                Response::Answer { seq, answer } => (*seq, false, answer.cached),
                Response::Error { seq, .. } => (*seq, true, false),
                other => return Err(format!("unexpected batch frame: {other:?}")),
            };
            if is_err {
                errs += 1;
            } else if cached {
                hits += 1;
            }
            let slot = seq.map_or(i, |s| s as usize);
            let line = encode_response_line(&resp).map_err(|e| e.to_string())?;
            println!("{}\n  -> {line}", lines.get(slot).map_or("?", |l| l));
        }
        println!(
            "batch: {} queries, {} served from cache, {} errors{}",
            lines.len(),
            hits,
            errs,
            if stream { " (streamed)" } else { "" }
        );
        // Scripted callers rely on the exit status; a batch with failed
        // queries must not report success.
        if errs > 0 {
            return Err(format!("{errs} of {} batch queries failed", lines.len()));
        }
    } else {
        // Single-query mode mirrors `solve`'s flags.
        let mut q = Query::new(req(opts, "dataset")?, num(opts, "k")?.ok_or("missing --k")?);
        if let Some(alg) = opts.get("alg") {
            q.alg = alg.clone();
        }
        if let Some(alpha) = num(opts, "alpha")? {
            q.alpha = alpha;
        }
        if let Some(seed) = num(opts, "seed")? {
            q.seed = seed;
        }
        q.balanced = opts.contains_key("balanced");
        q.skyline = !opts.contains_key("no-skyline");
        let ans = client.query(&q).map_err(|e| e.to_string())?;
        println!("algorithm : {}", ans.alg);
        println!("rows      : {:?}", ans.indices);
        match ans.mhr {
            Some(m) => println!("mhr       : {m:.6}"),
            None => println!("mhr       : (not evaluated)"),
        }
        println!("err(S)    : {}", ans.violations);
        println!("cached    : {}", ans.cached);
        println!("time      : {}µs", ans.micros);
    }

    if opts.contains_key("show-stats") {
        client.send_line("STATS").map_err(|e| e.to_string())?;
        let stats = client.recv().map_err(|e| e.to_string())?;
        // Re-render through the v1 text encoding so the output line is
        // identical whichever codec carried it.
        println!(
            "server {}",
            encode_response_line(&stats).map_err(|e| e.to_string())?
        );
    }
    Ok(())
}

/// Connects a [`fairhms::service::WireClient`] honouring `--codec`.
fn connect_client(opts: &HashMap<String, String>) -> Result<fairhms::service::WireClient, String> {
    use fairhms::service::{CodecKind, WireClient};
    let addr = req(opts, "addr")?;
    match opts.get("codec") {
        None => WireClient::connect(addr),
        Some(c) => {
            let kind = CodecKind::parse(c)
                .ok_or_else(|| format!("--codec: expected text|binary, got {c:?}"))?;
            WireClient::negotiate(addr, kind)
        }
    }
    .map_err(|e| format!("connect {addr}: {e}"))
}

/// Prints one `Mutated` frame in the CLI's key/value style.
fn print_mutated(resp: &fairhms::service::Response) {
    if let fairhms::service::Response::Mutated {
        name,
        op,
        rows,
        skyline,
        sky_changed,
        cache_dropped,
        warm_dropped,
    } = resp
    {
        println!("dataset      : {name}");
        println!("op           : {op}");
        println!("rows         : {rows}");
        println!("skyline      : {skyline}");
        println!("sky changed  : {sky_changed}");
        println!("cache dropped: {cache_dropped}");
        println!("warm dropped : {warm_dropped}");
    }
}

/// `fairhms append`: add one row to a served dataset's live catalog.
fn cmd_append(opts: &HashMap<String, String>) -> Result<(), String> {
    let dataset = req(opts, "dataset")?;
    let row: Vec<f64> = req(opts, "row")?
        .split(',')
        .map(|c| {
            c.trim()
                .parse::<f64>()
                .map_err(|_| format!("--row: cannot parse coordinate {c:?}"))
        })
        .collect::<Result<_, _>>()?;
    let group: usize = num(opts, "group")?.ok_or("missing --group")?;
    let mut client = connect_client(opts)?;
    let resp = client
        .append(dataset, &row, group)
        .map_err(|e| e.to_string())?;
    print_mutated(&resp);
    Ok(())
}

/// `fairhms delete`: remove one row (by current 0-based id) from a served
/// dataset's live catalog.
fn cmd_delete(opts: &HashMap<String, String>) -> Result<(), String> {
    let dataset = req(opts, "dataset")?;
    let row: usize = num(opts, "row")?.ok_or("missing --row")?;
    let mut client = connect_client(opts)?;
    let resp = client.delete(dataset, row).map_err(|e| e.to_string())?;
    print_mutated(&resp);
    Ok(())
}

/// `fairhms metrics`: dump a running server's telemetry snapshot
/// (per-stage latency histograms + counters) in a human table.
fn cmd_metrics(opts: &HashMap<String, String>) -> Result<(), String> {
    use fairhms::service::{CodecKind, WireClient};

    let addr = req(opts, "addr")?;
    let mut client = match opts.get("codec") {
        None => WireClient::connect(addr),
        Some(c) => {
            let kind = CodecKind::parse(c)
                .ok_or_else(|| format!("--codec: expected text|binary, got {c:?}"))?;
            WireClient::negotiate(addr, kind)
        }
    }
    .map_err(|e| format!("connect {addr}: {e}"))?;

    let (enabled, counters, histograms) = client.metrics().map_err(|e| e.to_string())?;
    println!(
        "telemetry : {}",
        if enabled { "enabled" } else { "disabled" }
    );
    if !counters.is_empty() {
        println!("counters  :");
        for (name, v) in &counters {
            println!("  {name:<24} {v}");
        }
    }
    if histograms.is_empty() {
        println!("histograms: (none recorded)");
    } else {
        println!(
            "histograms: (nanoseconds){:>10} {:>12} {:>10} {:>10} {:>10} {:>10}",
            "count", "sum", "p50", "p90", "p99", "max"
        );
        for h in &histograms {
            println!(
                "  {:<24} {:>10} {:>12} {:>10} {:>10} {:>10} {:>10}",
                h.name, h.count, h.sum, h.p50, h.p90, h.p99, h.max
            );
        }
    }
    Ok(())
}
