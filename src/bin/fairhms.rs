//! `fairhms` — command-line interface to the FairHMS library.
//!
//! ```text
//! fairhms gen    --out data.csv --n 10000 --d 4 --c 3 [--kind anticor|uniform|correlated] [--seed 1]
//! fairhms stats  --input data.csv --dim 4
//! fairhms solve  --input data.csv --dim 4 --k 10 [--alg bigreedy] [--alpha 0.1]
//!                [--balanced] [--no-skyline] [--seed 42]
//! ```
//!
//! `solve` prints the selected rows (0-based indices into the input file),
//! the evaluated MHR, the fairness-violation count, and wall-clock time.
//! Algorithms: `intcov` (exact, 2D only), `bigreedy`, `bigreedy+`,
//! `f-greedy`, `g-greedy`, `g-dmm`, `g-hs`, `g-sphere`, `streaming`.

use std::collections::HashMap;
use std::path::PathBuf;
use std::process::ExitCode;
use std::time::Instant;

use rand::rngs::StdRng;
use rand::SeedableRng;

use fairhms::core::registry::{
    Algorithm, BiGreedyAlg, BiGreedyPlusAlg, FGreedyAlg, GDmmAlg, GGreedyAlg, GHsAlg, GSphereAlg,
    IntCovAlg,
};
use fairhms::core::streaming::{streaming_fairhms, StreamingFairHmsConfig};
use fairhms::core::types::{FairHmsInstance, Solution};
use fairhms::data::gen;
use fairhms::data::skyline::group_skyline_indices;
use fairhms::data::stats::DatasetStats;
use fairhms::matroid::{balanced_bounds, proportional_bounds};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some((cmd, rest)) = args.split_first() else {
        eprintln!("{USAGE}");
        return ExitCode::FAILURE;
    };
    let opts = match parse_flags(rest) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("error: {e}\n\n{USAGE}");
            return ExitCode::FAILURE;
        }
    };
    let run = match cmd.as_str() {
        "gen" => cmd_gen(&opts),
        "stats" => cmd_stats(&opts),
        "solve" => cmd_solve(&opts),
        "help" | "--help" | "-h" => {
            println!("{USAGE}");
            return ExitCode::SUCCESS;
        }
        other => Err(format!("unknown command {other:?}")),
    };
    match run {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

const USAGE: &str = "fairhms — happiness maximizing sets under group fairness constraints

USAGE:
  fairhms gen   --out FILE --n N --d D --c C [--kind anticor|uniform|correlated] [--seed S]
  fairhms stats --input FILE --dim D
  fairhms solve --input FILE --dim D --k K [--alg NAME] [--alpha A] [--balanced]
                [--no-skyline] [--seed S]

ALGORITHMS (for --alg):
  intcov bigreedy bigreedy+ f-greedy g-greedy g-dmm g-hs g-sphere streaming

INPUT FORMAT: CSV rows `attr_1,...,attr_D,group_label` (no header).";

fn parse_flags(args: &[String]) -> Result<HashMap<String, String>, String> {
    let mut out = HashMap::new();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        let Some(key) = a.strip_prefix("--") else {
            return Err(format!("unexpected argument {a:?}"));
        };
        match key {
            // boolean flags
            "balanced" | "no-skyline" => {
                out.insert(key.to_string(), "true".to_string());
            }
            _ => {
                let v = it.next().ok_or_else(|| format!("--{key} needs a value"))?;
                out.insert(key.to_string(), v.clone());
            }
        }
    }
    Ok(out)
}

fn req<'a>(opts: &'a HashMap<String, String>, key: &str) -> Result<&'a str, String> {
    opts.get(key)
        .map(|s| s.as_str())
        .ok_or_else(|| format!("missing required flag --{key}"))
}

fn num<T: std::str::FromStr>(opts: &HashMap<String, String>, key: &str) -> Result<Option<T>, String> {
    match opts.get(key) {
        None => Ok(None),
        Some(v) => v
            .parse::<T>()
            .map(Some)
            .map_err(|_| format!("--{key}: cannot parse {v:?}")),
    }
}

fn cmd_gen(opts: &HashMap<String, String>) -> Result<(), String> {
    let out = PathBuf::from(req(opts, "out")?);
    let n: usize = num(opts, "n")?.ok_or("missing --n")?;
    let d: usize = num(opts, "d")?.ok_or("missing --d")?;
    let c: usize = num(opts, "c")?.ok_or("missing --c")?;
    let seed: u64 = num(opts, "seed")?.unwrap_or(1);
    let kind = opts.get("kind").map(|s| s.as_str()).unwrap_or("anticor");
    let mut rng = StdRng::seed_from_u64(seed);
    let points = match kind {
        "anticor" => gen::anti_correlated(n, d, &mut rng),
        "uniform" => gen::uniform(n, d, &mut rng),
        "correlated" => gen::correlated(n, d, 0.6, &mut rng),
        other => return Err(format!("unknown --kind {other:?}")),
    };
    let groups = gen::groups_by_sum(&points, d, c);
    let data = fairhms::data::Dataset::new(
        format!("{kind}_{d}d"),
        d,
        points,
        groups,
        (0..c).map(|g| format!("g{g}")).collect(),
    )
    .map_err(|e| e.to_string())?;
    fairhms::data::csv::write_dataset(&out, &data).map_err(|e| e.to_string())?;
    println!("wrote {} rows ({kind}, d={d}, C={c}) to {}", n, out.display());
    Ok(())
}

fn load(opts: &HashMap<String, String>) -> Result<fairhms::data::Dataset, String> {
    let input = PathBuf::from(req(opts, "input")?);
    let dim: usize = num(opts, "dim")?.ok_or("missing --dim")?;
    let mut data =
        fairhms::data::csv::read_dataset(&input, "input", dim).map_err(|e| e.to_string())?;
    data.normalize();
    Ok(data)
}

fn cmd_stats(opts: &HashMap<String, String>) -> Result<(), String> {
    let data = load(opts)?;
    let st = DatasetStats::compute(&data);
    println!("{}", st.table_row());
    for (g, (size, sky)) in st.group_sizes.iter().zip(&st.group_skylines).enumerate() {
        println!(
            "  group {:<12} |D_c| = {:<8} skyline = {}",
            data.group_names()[g],
            size,
            sky
        );
    }
    Ok(())
}

fn cmd_solve(opts: &HashMap<String, String>) -> Result<(), String> {
    let data = load(opts)?;
    let k: usize = num(opts, "k")?.ok_or("missing --k")?;
    let alpha: f64 = num(opts, "alpha")?.unwrap_or(0.1);
    let seed: u64 = num(opts, "seed")?.unwrap_or(42);
    let alg_name = opts.get("alg").map(|s| s.as_str()).unwrap_or("bigreedy");

    // Skyline restriction (lossless) unless disabled.
    let (input, row_map): (fairhms::data::Dataset, Vec<usize>) =
        if opts.contains_key("no-skyline") {
            let map = (0..data.len()).collect();
            (data, map)
        } else {
            let sky = group_skyline_indices(&data);
            (data.subset(&sky), sky)
        };

    let (lower, upper) = if opts.contains_key("balanced") {
        balanced_bounds(&input.group_sizes(), k, alpha)
    } else {
        proportional_bounds(&input.group_sizes(), k, alpha)
    };
    println!("bounds: l = {lower:?}, h = {upper:?}");
    let inst = FairHmsInstance::new(input.clone(), k, lower, upper).map_err(|e| e.to_string())?;

    let t = Instant::now();
    let sol: Solution = match alg_name {
        "intcov" => IntCovAlg.solve(&inst),
        "bigreedy" => BiGreedyAlg {
            seed,
            ..BiGreedyAlg::default()
        }
        .solve(&inst),
        "bigreedy+" => BiGreedyPlusAlg {
            seed,
            ..BiGreedyPlusAlg::default()
        }
        .solve(&inst),
        "f-greedy" => FGreedyAlg.solve(&inst),
        "g-greedy" => GGreedyAlg.solve(&inst),
        "g-dmm" => GDmmAlg::default().solve(&inst),
        "g-hs" => GHsAlg::default().solve(&inst),
        "g-sphere" => GSphereAlg.solve(&inst),
        "streaming" => streaming_fairhms(
            &inst,
            &StreamingFairHmsConfig {
                seed,
                ..StreamingFairHmsConfig::default()
            },
        ),
        other => return Err(format!("unknown --alg {other:?}")),
    }
    .map_err(|e| e.to_string())?;
    let elapsed = t.elapsed();

    let mhr = if input.dim() == 2 {
        fairhms::core::eval::mhr_exact_2d(&input, &sol.indices)
    } else {
        fairhms::core::eval::mhr_exact_lp(&input, &sol.indices)
    };
    let err = inst.matroid().violations(&sol.indices);
    println!("algorithm : {alg_name}");
    println!("rows      : {:?}", sol.indices.iter().map(|&i| row_map[i]).collect::<Vec<_>>());
    println!("mhr       : {mhr:.6}");
    println!("err(S)    : {err}");
    println!("time      : {elapsed:?}");
    Ok(())
}
