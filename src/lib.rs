//! # fairhms — Happiness Maximizing Sets under Group Fairness Constraints
//!
//! A production-quality Rust reproduction of *"Happiness Maximizing Sets
//! under Group Fairness Constraints"* (Zheng, Ma, Ma, Wang, Wang — VLDB
//! 2022). Given a database of tuples scored by unknown nonnegative linear
//! utilities and partitioned into demographic groups, **FairHMS** selects
//! `k` tuples that maximize the worst-case happiness ratio while keeping
//! every group's representation within prescribed bounds.
//!
//! ## Quickstart
//!
//! ```
//! use fairhms::prelude::*;
//!
//! // The paper's Table-1 LSAC sample, grouped by gender.
//! let mut data = fairhms::data::realsim::lsac_example()
//!     .dataset(&["gender"])
//!     .unwrap();
//! data.normalize(); // scale-only: divide each attribute by its max
//!
//! // One male and one female applicant, k = 2.
//! let inst = FairHmsInstance::new(data, 2, vec![1, 1], vec![1, 1]).unwrap();
//! let sol = intcov(&inst).unwrap(); // exact in 2D
//! assert_eq!(sol.indices, vec![4, 7]); // {a5, a8}, as in Example 2.2
//! assert!((sol.mhr.unwrap() - 0.9834).abs() < 5e-4);
//! ```
//!
//! ## Crate map
//!
//! | Module | Contents |
//! |--------|----------|
//! | [`core`] | `IntCov`, `BiGreedy`, `BiGreedy+`, baselines, fair adapters, evaluators |
//! | [`data`] | datasets, skylines, generators, simulated real datasets |
//! | [`geometry`] | envelopes, hulls, δ-nets, ε-kernel directions |
//! | [`lp`] | two-phase simplex + happiness-ratio LPs |
//! | [`matroid`] | uniform / partition / group-fairness matroids |
//! | [`submodular`] | greedy & lazy greedy under matroid constraints |
//! | [`service`] | resident query engine: catalog, solution cache, batch executor, TCP server |
//!
//! See `DESIGN.md` for the full system inventory and `EXPERIMENTS.md` for
//! the paper-vs-measured reproduction record.

pub use fairhms_core as core;
pub use fairhms_data as data;
pub use fairhms_geometry as geometry;
pub use fairhms_lp as lp;
pub use fairhms_matroid as matroid;
pub use fairhms_service as service;
pub use fairhms_submodular as submodular;

/// The most common imports, re-exported flat.
pub mod prelude {
    pub use fairhms_core::adapt::{f_greedy, g_adapt};
    pub use fairhms_core::adaptive::{bigreedy_plus, BiGreedyPlusConfig};
    pub use fairhms_core::bigreedy::{bigreedy, BiGreedyConfig, BiGreedyMode};
    pub use fairhms_core::eval::{mhr_exact_2d, mhr_exact_lp, NetEvaluator};
    pub use fairhms_core::intcov::intcov;
    pub use fairhms_core::registry::{by_name, Algorithm, AlgorithmParams};
    pub use fairhms_core::types::{CoreError, FairHmsInstance, Solution};
    pub use fairhms_data::dataset::{Dataset, Table};
    pub use fairhms_data::skyline::group_skyline_indices;
    pub use fairhms_matroid::{balanced_bounds, proportional_bounds, FairnessMatroid, Matroid};
    pub use fairhms_service::{
        BatchExecutor, Catalog, Query, QueryEngine, ServiceError, SolutionCache,
    };
}
