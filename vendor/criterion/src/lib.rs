//! Offline stand-in for the [`criterion`](https://crates.io/crates/criterion)
//! benchmark harness.
//!
//! The workspace must build without network access, so this crate
//! reimplements the small slice of the criterion 0.5 API the benches use:
//! [`Criterion`], [`BenchmarkGroup`], [`Bencher::iter`], [`BenchmarkId`],
//! [`Throughput`], [`black_box`], and the [`criterion_group!`] /
//! [`criterion_main!`] macros. Instead of criterion's statistical engine it
//! runs a short warm-up followed by a time-boxed measurement loop and
//! prints mean wall-clock time per iteration — enough for smoke benches and
//! for relative before/after comparisons.
//!
//! Filters passed on the command line (`cargo bench -- <substring>`) are
//! honored; unknown `--flags` are ignored for cargo compatibility.

use std::fmt;
use std::time::{Duration, Instant};

/// Re-export of [`std::hint::black_box`].
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Throughput annotation (printed alongside timings).
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// A benchmark identifier: `function_name/parameter`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `name/parameter`.
    pub fn new(name: impl fmt::Display, parameter: impl fmt::Display) -> Self {
        Self {
            id: format!("{name}/{parameter}"),
        }
    }

    /// Just the parameter (the group name supplies the prefix).
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        Self {
            id: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        Self { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        Self { id: s }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.id)
    }
}

/// Passed to the closure given to `bench_function`; call [`Bencher::iter`].
pub struct Bencher {
    /// Mean nanoseconds per iteration, filled in by [`Bencher::iter`].
    mean_ns: f64,
    iters: u64,
    measure_for: Duration,
}

impl Bencher {
    /// Times `f`: one warm-up call, then as many calls as fit in the
    /// measurement window (at least 5), recording mean time per call.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        black_box(f()); // warm-up
        let start = Instant::now();
        let mut iters: u64 = 0;
        loop {
            black_box(f());
            iters += 1;
            if iters >= 5 && start.elapsed() >= self.measure_for {
                break;
            }
            if iters >= 1_000_000 {
                break;
            }
        }
        self.mean_ns = start.elapsed().as_nanos() as f64 / iters as f64;
        self.iters = iters;
    }
}

fn human(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.1} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:.3} s", ns / 1_000_000_000.0)
    }
}

#[derive(Debug, Clone)]
struct Settings {
    filter: Option<String>,
    measure_for: Duration,
}

impl Default for Settings {
    fn default() -> Self {
        Self {
            filter: None,
            measure_for: Duration::from_millis(
                std::env::var("FAIRHMS_BENCH_MS")
                    .ok()
                    .and_then(|s| s.parse().ok())
                    .unwrap_or(200),
            ),
        }
    }
}

/// Top-level harness handle.
#[derive(Debug, Clone, Default)]
pub struct Criterion {
    settings: Settings,
}

impl Criterion {
    /// Reads the positional benchmark-name filter from `std::env::args`,
    /// skipping cargo/libtest flags.
    pub fn configure_from_args(mut self) -> Self {
        let mut args = std::env::args().skip(1);
        while let Some(a) = args.next() {
            if a == "--bench" || a == "--test" {
                continue;
            }
            if let Some(flag) = a.strip_prefix("--") {
                // flags with values: skip the value
                if matches!(flag, "measurement-time" | "warm-up-time" | "sample-size") {
                    let _ = args.next();
                }
                continue;
            }
            self.settings.filter = Some(a);
            break;
        }
        self
    }

    /// Global sample-size hint (accepted for API compatibility; the
    /// stand-in is time-boxed instead).
    pub fn sample_size(self, _n: usize) -> Self {
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            throughput: None,
        }
    }

    /// Benches a single function outside any group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        f: F,
    ) -> &mut Self {
        let id = id.into();
        let settings = self.settings.clone();
        run_one(&settings, &id.id, None, f);
        self
    }
}

/// A named group of benchmarks sharing throughput/size settings.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Sample-size hint (accepted for API compatibility).
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Declares per-iteration throughput, echoed in the report line.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Benches `f` under `group/id`.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        f: F,
    ) -> &mut Self {
        let full = format!("{}/{}", self.name, id.into());
        run_one(&self.criterion.settings, &full, self.throughput, f);
        self
    }

    /// Benches `f(bencher, input)` under `group/id`.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        let full = format!("{}/{}", self.name, id.into());
        run_one(&self.criterion.settings, &full, self.throughput, |b| {
            f(b, input)
        });
        self
    }

    /// Ends the group (no-op; provided for API compatibility).
    pub fn finish(self) {}
}

fn run_one<F: FnMut(&mut Bencher)>(
    settings: &Settings,
    name: &str,
    throughput: Option<Throughput>,
    mut f: F,
) {
    if let Some(filter) = &settings.filter {
        if !name.contains(filter.as_str()) {
            return;
        }
    }
    let mut bencher = Bencher {
        mean_ns: 0.0,
        iters: 0,
        measure_for: settings.measure_for,
    };
    f(&mut bencher);
    let rate = match throughput {
        Some(Throughput::Elements(n)) if bencher.mean_ns > 0.0 => {
            format!("  ({:.0} elem/s)", n as f64 / (bencher.mean_ns * 1e-9))
        }
        Some(Throughput::Bytes(n)) if bencher.mean_ns > 0.0 => {
            format!("  ({:.0} B/s)", n as f64 / (bencher.mean_ns * 1e-9))
        }
        _ => String::new(),
    };
    println!(
        "{name:<48} time: {:>12}/iter  [{} iters]{rate}",
        human(bencher.mean_ns),
        bencher.iters
    );
}

/// Declares a group-runner function, criterion-style.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config.configure_from_args();
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Declares the bench binary's `main`, running every group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
