//! Offline stand-in for the [`proptest`](https://crates.io/crates/proptest)
//! property-testing crate.
//!
//! The workspace must build without network access, so the subset of the
//! proptest API its test suites use is reimplemented here: the
//! [`Strategy`] trait with `prop_map` / `prop_flat_map`, range and tuple
//! strategies, [`collection::vec`], [`Just`], the [`proptest!`] macro with
//! `#![proptest_config(..)]`, and the `prop_assert!` family.
//!
//! Differences from real proptest: generation is plain seeded random
//! sampling — there is **no shrinking** and no persisted failure regression
//! files. Each failure reports the case number under a fixed deterministic
//! seed, so failures reproduce exactly on re-run.

use std::ops::{Range, RangeInclusive};

pub mod test_runner {
    //! Test-case driver types: config, RNG, and error plumbing.

    /// Per-block configuration (`#![proptest_config(..)]`).
    #[derive(Debug, Clone)]
    pub struct Config {
        /// Number of random cases each property runs.
        pub cases: u32,
    }

    impl Config {
        /// A config running `cases` random cases.
        pub fn with_cases(cases: u32) -> Self {
            Self { cases }
        }
    }

    impl Default for Config {
        fn default() -> Self {
            Self { cases: 128 }
        }
    }

    /// Why a single generated case failed.
    #[derive(Debug, Clone)]
    pub enum TestCaseError {
        /// An assertion in the property body failed.
        Fail(String),
        /// The case asked to be discarded (`prop_assume!`).
        Reject(String),
    }

    impl TestCaseError {
        /// An assertion failure carrying `reason`.
        pub fn fail(reason: impl Into<String>) -> Self {
            TestCaseError::Fail(reason.into())
        }

        /// A discarded case carrying `reason`.
        pub fn reject(reason: impl Into<String>) -> Self {
            TestCaseError::Reject(reason.into())
        }
    }

    impl std::fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            match self {
                TestCaseError::Fail(r) => write!(f, "assertion failed: {r}"),
                TestCaseError::Reject(r) => write!(f, "case rejected: {r}"),
            }
        }
    }

    /// Deterministic SplitMix64 stream driving value generation.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// A generator with a fixed, named seed.
        pub fn from_seed(seed: u64) -> Self {
            Self { state: seed }
        }

        /// Next 64 random bits.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e3779b97f4a7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
            z ^ (z >> 31)
        }

        /// Uniform `f64` in `[0, 1)`.
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }

        /// Uniform `u64` in `[0, bound)`; `bound` must be positive.
        pub fn below(&mut self, bound: u64) -> u64 {
            debug_assert!(bound > 0);
            self.next_u64() % bound
        }
    }
}

pub mod strategy {
    //! The [`Strategy`] trait and combinators.

    use super::test_runner::TestRng;

    /// A recipe for generating random values of type `Value`.
    ///
    /// Unlike real proptest there is no value tree / shrinking; a strategy
    /// simply draws a value from the RNG.
    pub trait Strategy {
        /// The generated value type.
        type Value;

        /// Draws one value.
        fn new_value(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<T, F: Fn(Self::Value) -> T>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { inner: self, f }
        }

        /// Generates a value, then generates from the strategy `f` builds
        /// out of it (dependent generation).
        fn prop_flat_map<S: Strategy, F: Fn(Self::Value) -> S>(self, f: F) -> FlatMap<Self, F>
        where
            Self: Sized,
        {
            FlatMap { inner: self, f }
        }

        /// Type-erases the strategy.
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            BoxedStrategy(Box::new(self))
        }
    }

    impl<S: Strategy + ?Sized> Strategy for &S {
        type Value = S::Value;
        fn new_value(&self, rng: &mut TestRng) -> Self::Value {
            (**self).new_value(rng)
        }
    }

    /// See [`Strategy::prop_map`].
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, T, F: Fn(S::Value) -> T> Strategy for Map<S, F> {
        type Value = T;
        fn new_value(&self, rng: &mut TestRng) -> T {
            (self.f)(self.inner.new_value(rng))
        }
    }

    /// See [`Strategy::prop_flat_map`].
    pub struct FlatMap<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
        type Value = S2::Value;
        fn new_value(&self, rng: &mut TestRng) -> S2::Value {
            (self.f)(self.inner.new_value(rng)).new_value(rng)
        }
    }

    /// A type-erased strategy.
    pub struct BoxedStrategy<T>(Box<dyn Strategy<Value = T>>);

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;
        fn new_value(&self, rng: &mut TestRng) -> T {
            self.0.new_value(rng)
        }
    }

    /// Always generates a clone of the wrapped value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn new_value(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    macro_rules! tuple_strategy {
        ($($name:ident),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                #[allow(non_snake_case)]
                fn new_value(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.new_value(rng),)+)
                }
            }
        };
    }
    tuple_strategy!(A);
    tuple_strategy!(A, B);
    tuple_strategy!(A, B, C);
    tuple_strategy!(A, B, C, D);
    tuple_strategy!(A, B, C, D, E);
    tuple_strategy!(A, B, C, D, E, F);
}

pub use strategy::{BoxedStrategy, Just, Strategy};

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn new_value(&self, rng: &mut test_runner::TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn new_value(&self, rng: &mut test_runner::TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as i128 - lo as i128) as u64 + 1;
                (lo as i128 + rng.below(span) as i128) as $t
            }
        }
    )*};
}
int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! float_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn new_value(&self, rng: &mut test_runner::TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                self.start + (self.end - self.start) * rng.unit_f64() as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn new_value(&self, rng: &mut test_runner::TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                lo + (hi - lo) * rng.unit_f64() as $t
            }
        }
    )*};
}
float_range_strategy!(f32, f64);

pub mod collection {
    //! Collection strategies (`prop::collection::vec`).

    use super::strategy::Strategy;
    use super::test_runner::TestRng;
    use std::ops::{Range, RangeInclusive};

    /// Number of elements to generate: a fixed size or a size range.
    #[derive(Debug, Clone)]
    pub struct SizeRange {
        lo: usize,
        hi_inclusive: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            Self {
                lo: n,
                hi_inclusive: n,
            }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            Self {
                lo: r.start,
                hi_inclusive: r.end - 1,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            assert!(r.start() <= r.end(), "empty size range");
            Self {
                lo: *r.start(),
                hi_inclusive: *r.end(),
            }
        }
    }

    /// Generates `Vec`s whose elements come from `element`.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn new_value(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.hi_inclusive - self.size.lo + 1) as u64;
            let len = self.size.lo + rng.below(span) as usize;
            (0..len).map(|_| self.element.new_value(rng)).collect()
        }
    }

    /// A strategy for `Vec`s of `size` elements drawn from `element`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }
}

pub mod prelude {
    //! One-stop imports, mirroring `proptest::prelude`.

    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::{Config as ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};

    /// Module-style access (`prop::collection::vec`).
    pub mod prop {
        pub use crate::collection;
        pub use crate::strategy;
    }
}

/// Fails the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "{}", stringify!($cond));
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::core::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)*)),
            );
        }
    };
}

/// Fails the current case unless `left == right`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(l == r, "{:?} != {:?}", l, r);
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(l == r, $($fmt)*);
    }};
}

/// Fails the current case unless `left != right`.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(l != r, "{:?} == {:?}", l, r);
    }};
}

/// Discards the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::reject(
                stringify!($cond).to_string(),
            ));
        }
    };
}

/// Declares property tests over strategies, mirroring `proptest::proptest!`.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { cfg = $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! {
            cfg = $crate::test_runner::Config::default();
            $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (cfg = $cfg:expr; $($(#[$meta:meta])* fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::Config = $cfg;
                // Fixed seed, perturbed per test name: failures reproduce.
                let mut seed: u64 = 0x70_72_6f_70_74_65_73_74; // "proptest"
                for b in stringify!($name).bytes() {
                    seed = seed.wrapping_mul(1099511628211).wrapping_add(b as u64);
                }
                let mut rng = $crate::test_runner::TestRng::from_seed(seed);
                let mut ran: u32 = 0;
                let mut case: u64 = 0;
                while ran < config.cases {
                    case += 1;
                    if case > (config.cases as u64) * 20 {
                        panic!(
                            "proptest {}: too many rejected cases ({} accepted of {} drawn)",
                            stringify!($name), ran, case
                        );
                    }
                    let ($($pat,)+) =
                        $crate::strategy::Strategy::new_value(&($($strat,)+), &mut rng);
                    let result: ::core::result::Result<(), $crate::test_runner::TestCaseError> =
                        (move || {
                            $body
                            #[allow(unreachable_code)]
                            ::core::result::Result::Ok(())
                        })();
                    match result {
                        ::core::result::Result::Ok(()) => ran += 1,
                        ::core::result::Result::Err(
                            $crate::test_runner::TestCaseError::Reject(_),
                        ) => continue,
                        ::core::result::Result::Err(e) => panic!(
                            "proptest {} failed at case {}: {}",
                            stringify!($name), case, e
                        ),
                    }
                }
            }
        )*
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    fn pair() -> impl Strategy<Value = (usize, Vec<f64>)> {
        (1usize..=4).prop_flat_map(|n| {
            (Just(n), prop::collection::vec(0.0f64..1.0, n)).prop_map(|(n, v)| (n, v))
        })
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_in_bounds(x in 2usize..=8, y in 0.5f64..1.0) {
            prop_assert!((2..=8).contains(&x));
            prop_assert!((0.5..1.0).contains(&y), "y = {}", y);
        }

        #[test]
        fn flat_map_links_length((n, v) in pair()) {
            prop_assert_eq!(v.len(), n);
        }

        #[test]
        fn early_ok_return(x in 0usize..10) {
            if x > 100 {
                return Ok(());
            }
            prop_assert!(x < 10);
        }
    }
}
