//! Offline stand-in for the [`rand`](https://crates.io/crates/rand) crate.
//!
//! This repository must build without network access, so the subset of the
//! `rand 0.8` API the workspace uses is reimplemented here on top of a
//! deterministic xoshiro256** generator seeded via SplitMix64. The surface
//! is intentionally tiny: [`RngCore`], [`Rng`] (`gen`, `gen_range`,
//! `gen_bool`), [`SeedableRng::seed_from_u64`], and [`rngs::StdRng`].
//!
//! Streams differ from the real `rand` crate (which uses ChaCha12 for
//! `StdRng`), so seeded runs are reproducible *within* this repository but
//! not bit-compatible with upstream `rand`.

use std::ops::{Range, RangeInclusive};

/// Low-level source of randomness.
pub trait RngCore {
    /// Next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// Next 32 uniformly random bits (upper half of [`RngCore::next_u64`]).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Types samplable uniformly from an RNG (stand-in for the `Standard`
/// distribution).
pub trait StandardSample: Sized {
    /// Draws one value from `rng`.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl StandardSample for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 high bits -> uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardSample for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl StandardSample for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl StandardSample for u64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl StandardSample for u32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl StandardSample for usize {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}

/// A range samplable by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range. Panics on empty ranges.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end - self.start) as u128;
                self.start + (rng.next_u64() as u128 % span) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = self.into_inner();
                assert!(lo <= hi, "gen_range: empty range");
                let span = (hi - lo) as u128 + 1;
                lo + (rng.next_u64() as u128 % span) as $t
            }
        }
    )*};
}
int_sample_range!(u8, u16, u32, u64, usize);

macro_rules! signed_sample_range {
    ($($t:ty => $u:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                (self.start as i128 + (rng.next_u64() as u128 % span) as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = self.into_inner();
                assert!(lo <= hi, "gen_range: empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                (lo as i128 + (rng.next_u64() as u128 % span) as i128) as $t
            }
        }
    )*};
}
signed_sample_range!(i8 => u8, i16 => u16, i32 => u32, i64 => u64, isize => usize);

macro_rules! float_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let u = f64::sample_standard(rng) as $t;
                self.start + (self.end - self.start) * u
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = self.into_inner();
                assert!(lo <= hi, "gen_range: empty range");
                let u = f64::sample_standard(rng) as $t;
                lo + (hi - lo) * u
            }
        }
    )*};
}
float_sample_range!(f32, f64);

/// High-level sampling methods, auto-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// A uniform sample of type `T` (`f64` in `[0,1)`, full-width ints…).
    fn gen<T: StandardSample>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// A uniform sample from `range` (half-open or inclusive).
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_single(self)
    }

    /// `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        f64::sample_standard(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// RNGs constructible from a seed.
pub trait SeedableRng: Sized {
    /// Builds the generator from a 64-bit seed (expanded via SplitMix64).
    fn seed_from_u64(seed: u64) -> Self;

    /// A generator seeded from system entropy; this offline stand-in
    /// derives it from the current time instead.
    fn from_entropy() -> Self {
        let nanos = std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| d.as_nanos() as u64)
            .unwrap_or(0x9e3779b97f4a7c15);
        Self::seed_from_u64(nanos)
    }
}

/// Named generator types.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic xoshiro256** generator (stand-in for `rand`'s
    /// ChaCha12-based `StdRng`; same API, different stream).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion, as recommended by the xoshiro authors.
            let mut x = seed;
            let mut next = move || {
                x = x.wrapping_add(0x9e3779b97f4a7c15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
                z ^ (z >> 31)
            };
            let s = [next(), next(), next(), next()];
            Self { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

/// A time-seeded [`rngs::StdRng`] (stand-in for `rand::thread_rng`).
pub fn thread_rng() -> rngs::StdRng {
    rngs::StdRng::from_entropy()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rngs::StdRng;

    #[test]
    fn deterministic_streams() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(StdRng::seed_from_u64(7).next_u64(), c.next_u64());
    }

    #[test]
    fn unit_interval_and_ranges() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
            let i = rng.gen_range(3usize..10);
            assert!((3..10).contains(&i));
            let j = rng.gen_range(-2.0f64..=2.0);
            assert!((-2.0..=2.0).contains(&j));
        }
    }

    #[test]
    fn works_through_mut_ref() {
        fn draw(rng: &mut impl Rng) -> f64 {
            rng.gen()
        }
        let mut rng = StdRng::seed_from_u64(2);
        let _ = draw(&mut rng);
        let r = &mut rng;
        let _: u64 = r.gen();
    }
}
