#!/usr/bin/env bash
# Offline CI for the fairhms workspace. Mirrors .github/workflows/ci.yml so
# the same gate runs locally and in any runner with a Rust toolchain — the
# workspace has no network dependencies (rand/criterion/proptest are
# vendored under vendor/).
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --all --check

# Repo-invariant static analysis (rules R1–R6: total_cmp comparators,
# documented/confined unsafe, justified atomic orderings, acyclic
# lock-order graph + poison-recovering locks, clock-free hot paths,
# newline-safe wire literals — see docs/ARCHITECTURE.md, "Static
# analysis & enforced invariants"). Runs before the test matrix: a
# contract violation fails fast, without waiting on seven test passes.
# The waiver baseline is pinned; adding a `fairhms-lint: allow(..)`
# waiver requires bumping it here with a justification in the diff.
FAIRHMS_LINT_WAIVER_BASELINE=11
echo "==> fairhms-lint --deny-all (waiver baseline: $FAIRHMS_LINT_WAIVER_BASELINE)"
cargo run -q -p fairhms-lint -- --deny-all --max-waivers "$FAIRHMS_LINT_WAIVER_BASELINE"

echo "==> cargo clippy -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo doc --workspace --no-deps (rustdoc warnings are errors)"
RUSTDOCFLAGS="-D warnings" cargo doc --workspace --no-deps

echo "==> cargo build --release"
cargo build --release

echo "==> cargo test -q"
cargo test -q

# The service suite runs twice more, pinned to each preparation
# pipeline: every engine/cache/server test must pass over the classic
# single-shard catalog AND the sharded (4-way) one — answers are
# contractually bit-identical (see docs/ARCHITECTURE.md, "Sharded
# preparation & merge").
# The service suite runs once per wire codec too: FAIRHMS_TEST_CODEC
# routes every TCP test's client through the v1 text lines or the v2
# binary framing (WireClient::connect_env) — answers are contractually
# bit-identical (see docs/PROTOCOL.md, "Protocol v2"). The text pass is
# folded into the unsharded run (explicit text == the default), so no
# configuration is executed twice.
echo "==> service tests, unsharded catalog + text codec (FAIRHMS_TEST_SHARDS=1 FAIRHMS_TEST_CODEC=text)"
FAIRHMS_TEST_SHARDS=1 FAIRHMS_TEST_CODEC=text cargo test -p fairhms-service -q

echo "==> service tests, sharded catalog (FAIRHMS_TEST_SHARDS=4)"
FAIRHMS_TEST_SHARDS=4 cargo test -p fairhms-service -q

echo "==> service tests, binary codec (FAIRHMS_TEST_CODEC=binary)"
FAIRHMS_TEST_CODEC=binary cargo test -p fairhms-service -q

# …and once with the warm-start tier disabled: every engine test must
# pass over the fully cold solve path too — answers are contractually
# bit-identical with the tier on or off (see
# crates/service/tests/warmstart_equivalence.rs).
echo "==> service tests, warm-start disabled (FAIRHMS_TEST_WARMSTART=0)"
FAIRHMS_TEST_WARMSTART=0 cargo test -p fairhms-service -q

# …and once with telemetry disabled: spans and stage accounting must be
# provably inert — answers are contractually bit-identical with
# telemetry on or off (see crates/service/tests/telemetry_equivalence.rs).
echo "==> service tests, telemetry disabled (FAIRHMS_TEST_TELEMETRY=0)"
FAIRHMS_TEST_TELEMETRY=0 cargo test -p fairhms-service -q

# …and once on the event-driven front end: FAIRHMS_TEST_FRONTEND routes
# every server the suite spawns through the poll(2) reactor instead of
# thread-per-connection — answers are contractually bit-identical (see
# crates/service/tests/frontend_equivalence.rs).
echo "==> service tests, event-driven front end (FAIRHMS_TEST_FRONTEND=event)"
FAIRHMS_TEST_FRONTEND=event cargo test -p fairhms-service -q

# …and once on the scalar kernel backend: FAIRHMS_TEST_KERNEL routes all
# hot-path evaluation through the row-major scalar loops instead of the
# blocked SoA kernels — answers are contractually bit-identical (see
# crates/service/tests/kernel_equivalence.rs and fairhms_geometry::soa).
echo "==> service tests, scalar kernel backend (FAIRHMS_TEST_KERNEL=scalar)"
FAIRHMS_TEST_KERNEL=scalar cargo test -p fairhms-service -q

# Overload smoke: the admission-control contract (bounded-queue sheds
# with retry advice, exact gauges, 500-connection idle fan-out) and the
# fault-injection matrix on both front ends.
echo "==> overload + fault-injection smoke (crates/service/tests/overload.rs)"
cargo test -p fairhms-service --test overload -q

# Mutation-churn smoke: mixed APPEND/DELETE/QUERY workloads (random
# interleavings vs. a from-scratch re-prep oracle, delta invalidation,
# pipelined mutate→query ordering) over both front ends × both codecs —
# the full matrix, since mutations ride the control path, whose routing
# differs per front end, and the MUTATED frame differs per codec.
echo "==> mutation churn smoke (crates/service/tests/mutation.rs, both front ends x both codecs)"
for fe in threaded event; do
  for codec in text binary; do
    echo "    -- FAIRHMS_TEST_FRONTEND=$fe FAIRHMS_TEST_CODEC=$codec"
    FAIRHMS_TEST_FRONTEND=$fe FAIRHMS_TEST_CODEC=$codec \
      cargo test -p fairhms-service --test mutation -q
  done
done

echo "==> bench smoke (service engine + shard prep + wire codecs + warm-start, tiny sizes)"
FAIRHMS_BENCH_MS="${FAIRHMS_BENCH_MS:-25}" cargo bench -p fairhms-bench --bench service
FAIRHMS_BENCH_MS="${FAIRHMS_BENCH_MS:-25}" cargo bench -p fairhms-bench --bench shard
FAIRHMS_BENCH_MS="${FAIRHMS_BENCH_MS:-25}" cargo bench -p fairhms-bench --bench protocol
FAIRHMS_BENCH_MS="${FAIRHMS_BENCH_MS:-25}" cargo bench -p fairhms-bench --bench warmstart

# Telemetry bench: asserts the warm-hit overhead budget (<1 µs), measures
# the event front end's idle-connection fan-out (500 idle conns must cost
# only the loop + worker threads), and writes the machine-readable
# service profile.
echo "==> telemetry bench smoke (overhead budget + idle fan-out + BENCH_service.json)"
FAIRHMS_BENCH_JSON="$PWD/BENCH_service.json" cargo bench -p fairhms-bench --bench telemetry
python3 -c "import json; d = json.load(open('BENCH_service.json')); \
assert d['warm_hit_overhead_ns'] < 1000 and d['queries_per_sec'] > 0 \
and d['metrics']['histograms'], 'BENCH_service.json failed sanity checks'; \
f = d['idle_fanout']; \
assert f['connections'] >= 500 and f['threads_grown'] <= 16 \
and f['ping_us_under_fanout'] > 0, 'idle fan-out failed sanity checks'; \
s = d['solver']; \
assert s['dataset_points'] > 0 and s['net_size'] > 0 \
and s['points_per_sec'] > 0 and s['points_per_sec_scalar'] > 0 \
and s['db_max_ms_scalar'] > 0 and s['db_max_ms_blocked'] > 0 \
and s['bigreedy_cold_ms'] > 0 and s['bigreedy_cold_ms_scalar'] > 0, \
'solver kernel section failed sanity checks'; \
m = d['mutation']; \
assert m['append_us'] > 0 and m['delete_us'] > 0 and m['full_reprep_ms'] > 0 \
and m['dropped_by_dominated_append'] < m['cached_entries_before'] \
and m['dropped_by_skyline_append'] == m['cached_entries_before'], \
'mutation section failed sanity checks (delta invalidation must spare \
untouched entries on a dominated append)'" \
  || { echo "BENCH_service.json missing or malformed"; exit 1; }

echo "CI OK"
