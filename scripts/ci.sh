#!/usr/bin/env bash
# Offline CI for the fairhms workspace. Mirrors .github/workflows/ci.yml so
# the same gate runs locally and in any runner with a Rust toolchain — the
# workspace has no network dependencies (rand/criterion/proptest are
# vendored under vendor/).
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --all --check

echo "==> cargo clippy -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo doc --workspace --no-deps (rustdoc warnings are errors)"
RUSTDOCFLAGS="-D warnings" cargo doc --workspace --no-deps

echo "==> cargo build --release"
cargo build --release

echo "==> cargo test -q"
cargo test -q

echo "==> bench smoke (service engine, tiny sizes)"
FAIRHMS_BENCH_MS="${FAIRHMS_BENCH_MS:-25}" cargo bench -p fairhms-bench --bench service

echo "CI OK"
