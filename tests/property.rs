//! Property-based tests (proptest) over the core invariants.

use proptest::prelude::*;

use fairhms::core::eval::{mhr_exact_2d, mhr_exact_lp, NetEvaluator};
use fairhms::core::intcov::intcov;
use fairhms::core::types::FairHmsInstance;
use fairhms::data::skyline::{dominates, skyline_of};
use fairhms::data::Dataset;
use fairhms::geometry::envelope::Envelope;
use fairhms::geometry::line::Line;
use fairhms::geometry::sphere::grid_net_2d;

fn dataset_2d(points: &[(f64, f64)]) -> Dataset {
    let flat: Vec<f64> = points.iter().flat_map(|&(x, y)| [x, y]).collect();
    let mut d = Dataset::ungrouped("prop", 2, flat).unwrap();
    d.normalize();
    d
}

/// Strategy: 4–16 points in (0.05, 1]² (bounded away from zero so every
/// utility has a positive database maximum).
fn points_strategy() -> impl Strategy<Value = Vec<(f64, f64)>> {
    prop::collection::vec(((0.05f64..=1.0), (0.05f64..=1.0)), 4..16)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn envelope_dominates_member_lines(points in points_strategy()) {
        let lines: Vec<Line> = points.iter().map(|&(x, y)| Line::from_point(&[x, y])).collect();
        let env = Envelope::upper(&lines);
        for i in 0..=20 {
            let lambda = i as f64 / 20.0;
            let e = env.eval(lambda);
            for l in &lines {
                prop_assert!(e >= l.eval(lambda) - 1e-9);
            }
        }
    }

    #[test]
    fn mhr_monotone_under_growth(points in points_strategy()) {
        let data = dataset_2d(&points);
        let small = vec![0usize];
        let big: Vec<usize> = (0..data.len().min(4)).collect();
        prop_assert!(mhr_exact_2d(&data, &big) >= mhr_exact_2d(&data, &small) - 1e-9);
    }

    #[test]
    fn lp_and_envelope_agree(points in points_strategy()) {
        let data = dataset_2d(&points);
        let sel: Vec<usize> = (0..data.len()).step_by(2).collect();
        let a = mhr_exact_2d(&data, &sel);
        let b = mhr_exact_lp(&data, &sel);
        prop_assert!((a - b).abs() < 1e-6, "envelope {} vs lp {}", a, b);
    }

    #[test]
    fn net_estimate_upper_bounds_exact(points in points_strategy()) {
        let data = dataset_2d(&points);
        let ev = NetEvaluator::new(&data, grid_net_2d(48));
        let sel = vec![0usize, data.len() - 1];
        let exact = mhr_exact_2d(&data, &sel);
        let est = ev.mhr(&data, &sel);
        prop_assert!(est >= exact - 1e-9, "Lemma 4.1: {} < {}", est, exact);
    }

    #[test]
    fn skyline_members_not_dominated(points in points_strategy()) {
        let flat: Vec<f64> = points.iter().flat_map(|&(x, y)| [x, y]).collect();
        let sky = skyline_of(&flat, 2);
        for &i in &sky {
            let p = &flat[2 * i..2 * i + 2];
            for j in 0..points.len() {
                let q = &flat[2 * j..2 * j + 2];
                prop_assert!(!dominates(q, p), "{:?} dominates skyline member {:?}", q, p);
            }
        }
        // every non-skyline point is dominated by some skyline point
        for j in 0..points.len() {
            if sky.contains(&j) { continue; }
            let q = &flat[2 * j..2 * j + 2];
            let covered = sky.iter().any(|&i| dominates(&flat[2 * i..2 * i + 2], q));
            prop_assert!(covered, "non-skyline point {:?} not dominated", q);
        }
    }

    #[test]
    fn intcov_at_least_single_best_point(points in points_strategy()) {
        // The optimum for k = 2 is at least the best single point's MHR.
        let data = dataset_2d(&points);
        let n = data.len();
        let inst = FairHmsInstance::unconstrained(data, 2).unwrap();
        let sol = intcov(&inst).unwrap();
        let best_single = (0..n)
            .map(|i| mhr_exact_2d(inst.data(), &[i]))
            .fold(0.0f64, f64::max);
        prop_assert!(sol.mhr.unwrap() >= best_single - 1e-9);
    }

    #[test]
    fn intcov_fair_never_beats_unconstrained(points in points_strategy()) {
        let flat: Vec<f64> = points.iter().flat_map(|&(x, y)| [x, y]).collect();
        let n = points.len();
        let groups: Vec<usize> = (0..n).map(|i| i % 2).collect();
        let mut data = Dataset::new("prop", 2, flat, groups, vec!["a".into(), "b".into()]).unwrap();
        data.normalize();
        let data = std::sync::Arc::new(data);
        let unc = FairHmsInstance::unconstrained(std::sync::Arc::clone(&data), 2).unwrap();
        let fair = FairHmsInstance::new(data, 2, vec![1, 1], vec![1, 1]).unwrap();
        let u = intcov(&unc).unwrap().mhr.unwrap();
        let f = intcov(&fair).unwrap().mhr.unwrap();
        prop_assert!(f <= u + 1e-9, "fair {} beats unconstrained {}", f, u);
    }
}
