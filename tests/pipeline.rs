//! End-to-end pipeline invariants: normalization, skyline restriction, and
//! CSV round-trips compose without changing the answers.

use rand::rngs::StdRng;
use rand::SeedableRng;

use fairhms::core::eval::{mhr_exact_2d, mhr_exact_lp};
use fairhms::core::intcov::intcov;
use fairhms::core::types::FairHmsInstance;
use fairhms::data::gen::anti_correlated_dataset;
use fairhms::data::skyline::{group_skyline_indices, skyline_indices};
use fairhms::matroid::proportional_bounds;

#[test]
fn skyline_restriction_is_lossless_for_mhr() {
    // The global skyline realizes every utility's maximum, and it is a
    // subset of the per-group union, so denominators — hence MHRs — are
    // identical on the full and restricted datasets.
    let mut rng = StdRng::seed_from_u64(11);
    let data = anti_correlated_dataset(500, 2, 3, &mut rng);
    let sky = group_skyline_indices(&data);
    let restricted = data.subset(&sky);

    // a selection expressed in both index spaces
    let local: Vec<usize> = vec![0, sky.len() / 2, sky.len() - 1];
    let global: Vec<usize> = local.iter().map(|&i| sky[i]).collect();

    let full = mhr_exact_2d(&data, &global);
    let small = mhr_exact_2d(&restricted, &local);
    assert!(
        (full - small).abs() < 1e-9,
        "restriction changed the MHR: {full} vs {small}"
    );
}

#[test]
fn global_skyline_contained_in_group_union() {
    let mut rng = StdRng::seed_from_u64(12);
    for d in [2, 4, 6] {
        let data = anti_correlated_dataset(400, d, 4, &mut rng);
        let global = skyline_indices(&data);
        let union = group_skyline_indices(&data);
        for g in &global {
            assert!(union.binary_search(g).is_ok(), "d={d}: {g} missing");
        }
    }
}

#[test]
fn scale_invariance_of_mhr() {
    // Scaling any attribute by a positive factor must not change the MHR —
    // the invariance that justifies scale-only normalization (DESIGN.md).
    let mut rng = StdRng::seed_from_u64(13);
    let data = anti_correlated_dataset(60, 3, 2, &mut rng);
    let sel = vec![0, 10, 20, 30];
    let before = mhr_exact_lp(&data, &sel);

    let scales = [2.5, 0.3, 7.0];
    let scaled_points: Vec<f64> = data
        .points_flat()
        .chunks_exact(3)
        .flat_map(|p| {
            p.iter()
                .zip(&scales)
                .map(|(v, s)| v * s)
                .collect::<Vec<_>>()
        })
        .collect();
    let scaled = fairhms::data::Dataset::new(
        "scaled",
        3,
        scaled_points,
        data.groups().to_vec(),
        data.group_names().to_vec(),
    )
    .unwrap();
    let after = mhr_exact_lp(&scaled, &sel);
    assert!(
        (before - after).abs() < 1e-6,
        "scaling changed mhr: {before} vs {after}"
    );
}

#[test]
fn csv_roundtrip_preserves_solutions() {
    let mut rng = StdRng::seed_from_u64(14);
    let data = anti_correlated_dataset(120, 2, 3, &mut rng);
    let dir = std::env::temp_dir().join("fairhms_pipeline_test");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("roundtrip.csv");
    fairhms::data::csv::write_dataset(&path, &data).unwrap();
    let reloaded = fairhms::data::csv::read_dataset(&path, "reloaded", 2).unwrap();
    assert_eq!(reloaded.len(), data.len());
    assert_eq!(reloaded.num_groups(), data.num_groups());

    let (l, h) = proportional_bounds(&data.group_sizes(), 4, 0.1);
    let a = intcov(&FairHmsInstance::new(data, 4, l.clone(), h.clone()).unwrap()).unwrap();
    let b = intcov(&FairHmsInstance::new(reloaded, 4, l, h).unwrap()).unwrap();
    assert_eq!(a.indices, b.indices);
    assert!((a.mhr.unwrap() - b.mhr.unwrap()).abs() < 1e-12);
}

#[test]
fn full_pipeline_anticor_6d() {
    // generate → normalize → skyline → bounds → BiGreedy → evaluate
    use fairhms::core::bigreedy::{bigreedy, BiGreedyConfig};
    let mut rng = StdRng::seed_from_u64(15);
    let data = anti_correlated_dataset(800, 6, 4, &mut rng);
    let input = std::sync::Arc::new(data.subset(&group_skyline_indices(&data)));
    let k = 12;
    let (l, h) = proportional_bounds(&input.group_sizes(), k, 0.1);
    let inst = FairHmsInstance::new(std::sync::Arc::clone(&input), k, l, h).unwrap();
    let sol = bigreedy(&inst, &BiGreedyConfig::paper_default(k, 6)).unwrap();
    assert_eq!(sol.len(), k);
    assert!(inst.matroid().is_feasible(&sol.indices));
    let exact = mhr_exact_lp(&input, &sol.indices);
    let net_est = sol.mhr.unwrap();
    assert!(
        net_est >= exact - 1e-9,
        "Lemma 4.1: net {net_est} < exact {exact}"
    );
    assert!(exact > 0.3, "suspiciously poor solution: {exact}");
}
