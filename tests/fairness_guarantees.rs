//! Every fair algorithm must return a zero-violation size-`k` set on every
//! dataset family; the unfair originals must violate on skewed data — the
//! claim behind Figure 3.

use fairhms::core::registry::{fair_algorithms, fig3_algorithms};
use fairhms::core::types::{CoreError, FairHmsInstance};
use fairhms::data::realsim;
use fairhms::data::skyline::group_skyline_indices;
use fairhms::matroid::proportional_bounds;

fn instance_from(table: fairhms::data::Table, attrs: &[&str], k: usize) -> FairHmsInstance {
    let mut data = table.dataset(attrs).unwrap();
    data.normalize();
    let input = data.subset(&group_skyline_indices(&data));
    let (l, h) = proportional_bounds(&input.group_sizes(), k, 0.1);
    FairHmsInstance::new(input, k, l, h).unwrap()
}

#[test]
fn fair_algorithms_have_zero_violations_everywhere() {
    let instances = vec![
        instance_from(realsim::adult(1), &["gender"], 10),
        instance_from(realsim::compas(1), &["gender"], 12),
        instance_from(realsim::credit(1), &["job"], 10),
        instance_from(realsim::lawschs(1), &["race"], 8),
    ];
    for inst in &instances {
        for alg in fair_algorithms() {
            match alg.solve(inst) {
                Ok(sol) => {
                    assert_eq!(sol.len(), inst.k(), "{} returned wrong size", alg.name());
                    assert_eq!(
                        inst.matroid().violations(&sol.indices),
                        0,
                        "{} violated fairness",
                        alg.name()
                    );
                }
                // G-DMM / G-Sphere legitimately refuse quotas below d.
                Err(CoreError::ResourceLimit { .. }) => {}
                Err(e) => panic!("{} failed: {e}", alg.name()),
            }
        }
    }
}

#[test]
fn unfair_algorithms_violate_on_skewed_data() {
    // The simulated Adult gender groups are heavily skewed towards the
    // advantaged group on the skyline; at least one unfair baseline must
    // produce violations (in the paper, nearly all do, on nearly all data).
    let inst = instance_from(realsim::adult(1), &["gender"], 10);
    let mut total_violations = 0usize;
    for alg in fig3_algorithms() {
        if alg.is_fair() {
            continue;
        }
        if let Ok(sol) = alg.solve(&inst) {
            total_violations += inst.matroid().violations(&sol.indices);
        }
    }
    assert!(
        total_violations > 0,
        "no unfair baseline violated the bounds — the Figure 3 premise broke"
    );
}

#[test]
fn bigreedy_feasible_across_group_counts() {
    use fairhms::core::bigreedy::{bigreedy, BiGreedyConfig};
    for attrs in [vec!["gender"], vec!["isRecid"], vec!["gender", "isRecid"]] {
        let inst = instance_from(realsim::compas(1), &attrs, 12);
        let sol = bigreedy(&inst, &BiGreedyConfig::paper_default(12, inst.dim())).unwrap();
        assert!(inst.matroid().is_feasible(&sol.indices), "attrs {attrs:?}");
    }
}

#[test]
fn dmm_gate_mirrors_paper_on_compas() {
    // Compas is 9-dimensional: DMM must refuse (paper Section 5.2).
    use fairhms::core::baselines::{dmm, DmmConfig};
    let mut data = realsim::compas(1).dataset(&["gender"]).unwrap();
    data.normalize();
    let input = data.subset(&group_skyline_indices(&data));
    assert!(matches!(
        dmm(&input, 12, &DmmConfig::default()).unwrap_err(),
        CoreError::ResourceLimit { .. }
    ));
}
