//! Smoke tests for the `fairhms` CLI binary.

use std::path::PathBuf;
use std::process::Command;

fn bin() -> PathBuf {
    // target/debug/fairhms next to the test executable's directory
    let mut p = std::env::current_exe().unwrap();
    p.pop(); // deps/
    p.pop(); // debug/ (or release/)
    p.push(format!("fairhms{}", std::env::consts::EXE_SUFFIX));
    p
}

fn tmp(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join("fairhms_cli_test");
    std::fs::create_dir_all(&dir).unwrap();
    dir.join(name)
}

#[test]
fn gen_stats_solve_pipeline() {
    let csv = tmp("cli_data.csv");
    let gen = Command::new(bin())
        .args([
            "gen",
            "--out",
            csv.to_str().unwrap(),
            "--n",
            "300",
            "--d",
            "2",
            "--c",
            "3",
            "--seed",
            "5",
        ])
        .output()
        .expect("run gen");
    assert!(
        gen.status.success(),
        "gen: {}",
        String::from_utf8_lossy(&gen.stderr)
    );
    assert!(csv.exists());

    let stats = Command::new(bin())
        .args(["stats", "--input", csv.to_str().unwrap(), "--dim", "2"])
        .output()
        .expect("run stats");
    assert!(stats.status.success());
    let out = String::from_utf8_lossy(&stats.stdout);
    assert!(out.contains("n=300"), "stats output: {out}");
    assert!(out.contains("group"), "stats output: {out}");

    for alg in [
        "intcov",
        "bigreedy",
        "bigreedy+",
        "f-greedy",
        "g-greedy",
        "streaming",
    ] {
        let solve = Command::new(bin())
            .args([
                "solve",
                "--input",
                csv.to_str().unwrap(),
                "--dim",
                "2",
                "--k",
                "5",
                "--alg",
                alg,
            ])
            .output()
            .expect("run solve");
        assert!(
            solve.status.success(),
            "solve --alg {alg}: {}",
            String::from_utf8_lossy(&solve.stderr)
        );
        let out = String::from_utf8_lossy(&solve.stdout);
        assert!(out.contains("err(S)    : 0"), "--alg {alg}: {out}");
        assert!(out.contains("mhr"), "--alg {alg}: {out}");
    }
}

#[test]
fn solve_balanced_and_no_skyline_flags() {
    let csv = tmp("cli_flags.csv");
    Command::new(bin())
        .args([
            "gen",
            "--out",
            csv.to_str().unwrap(),
            "--n",
            "200",
            "--d",
            "3",
            "--c",
            "2",
            "--kind",
            "uniform",
        ])
        .output()
        .expect("run gen");
    let solve = Command::new(bin())
        .args([
            "solve",
            "--input",
            csv.to_str().unwrap(),
            "--dim",
            "3",
            "--k",
            "4",
            "--balanced",
            "--no-skyline",
        ])
        .output()
        .expect("run solve");
    assert!(
        solve.status.success(),
        "{}",
        String::from_utf8_lossy(&solve.stderr)
    );
}

/// Kills the spawned server even when an assertion fails mid-test, so
/// failing runs don't leave orphaned `fairhms serve` processes behind.
struct KillOnDrop(Option<std::process::Child>);

impl KillOnDrop {
    fn child(&mut self) -> &mut std::process::Child {
        self.0.as_mut().unwrap()
    }

    /// Hands the child back for a graceful `wait()` at the end of the
    /// happy path.
    fn into_inner(mut self) -> std::process::Child {
        self.0.take().unwrap()
    }
}

impl Drop for KillOnDrop {
    fn drop(&mut self) {
        if let Some(child) = &mut self.0 {
            let _ = child.kill();
            let _ = child.wait();
        }
    }
}

#[test]
fn serve_and_query_round_trip() {
    use std::io::{BufRead, BufReader, Write};

    let csv = tmp("cli_serve.csv");
    let gen = Command::new(bin())
        .args([
            "gen",
            "--out",
            csv.to_str().unwrap(),
            "--n",
            "300",
            "--d",
            "3",
            "--c",
            "3",
            "--seed",
            "11",
        ])
        .output()
        .expect("run gen");
    assert!(
        gen.status.success(),
        "{}",
        String::from_utf8_lossy(&gen.stderr)
    );

    // Port 0: the server prints the bound address on stdout.
    let mut server = KillOnDrop(Some(
        Command::new(bin())
            .args([
                "serve",
                "--data",
                &format!("anticor={}", csv.display()),
                "--addr",
                "127.0.0.1:0",
                "--workers",
                "2",
            ])
            .stdout(std::process::Stdio::piped())
            .spawn()
            .expect("spawn serve"),
    ));
    let mut server_out = BufReader::new(server.child().stdout.take().unwrap());
    let addr = loop {
        let mut line = String::new();
        assert_ne!(
            server_out.read_line(&mut line).unwrap(),
            0,
            "server exited before listening"
        );
        if let Some(rest) = line.trim().strip_prefix("fairhms-service listening on ") {
            break rest.split_whitespace().next().unwrap().to_string();
        }
    };

    // Single query through the CLI client.
    let query = Command::new(bin())
        .args([
            "query",
            "--addr",
            &addr,
            "--dataset",
            "anticor",
            "--k",
            "5",
            "--alg",
            "bigreedy",
            "--show-stats",
        ])
        .output()
        .expect("run query");
    assert!(
        query.status.success(),
        "{}",
        String::from_utf8_lossy(&query.stderr)
    );
    let out = String::from_utf8_lossy(&query.stdout);
    assert!(out.contains("cached    : false"), "{out}");
    assert!(out.contains("err(S)    : 0"), "{out}");

    // Batch file: the same query twice plus a second algorithm → the
    // repeat must be served from cache.
    let batch = tmp("cli_batch.txt");
    std::fs::write(
        &batch,
        "# comment lines are skipped\n\
         dataset=anticor k=5 alg=bigreedy\n\
         dataset=anticor k=5 alg=bigreedy\n\
         QUERY dataset=anticor k=4 alg=f-greedy\n",
    )
    .unwrap();
    let query = Command::new(bin())
        .args(["query", "--addr", &addr, "--file", batch.to_str().unwrap()])
        .output()
        .expect("run batch query");
    assert!(
        query.status.success(),
        "{}",
        String::from_utf8_lossy(&query.stderr)
    );
    let out = String::from_utf8_lossy(&query.stdout);
    assert!(
        out.contains("batch: 3 queries, 1 served from cache, 0 errors")
            || out.contains("batch: 3 queries, 2 served from cache, 0 errors"),
        "{out}"
    );

    // Shut the server down over the wire and wait for clean exit.
    let mut ctl = std::net::TcpStream::connect(&addr).unwrap();
    writeln!(ctl, "SHUTDOWN").unwrap();
    let mut bye = String::new();
    BufReader::new(ctl.try_clone().unwrap())
        .read_line(&mut bye)
        .unwrap();
    assert_eq!(bye.trim(), "OK bye");
    drop(ctl);
    let status = server.into_inner().wait().expect("server wait");
    assert!(status.success());
}

#[test]
fn helpful_errors() {
    let out = Command::new(bin()).output().expect("run bare");
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("USAGE"));

    let out = Command::new(bin())
        .args([
            "solve",
            "--input",
            "/nonexistent.csv",
            "--dim",
            "2",
            "--k",
            "3",
        ])
        .output()
        .expect("run solve");
    assert!(!out.status.success());

    let out = Command::new(bin())
        .args(["frobnicate"])
        .output()
        .expect("run unknown");
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown command"));
}
