//! Smoke tests for the `fairhms` CLI binary.

use std::path::PathBuf;
use std::process::Command;

fn bin() -> PathBuf {
    // target/debug/fairhms next to the test executable's directory
    let mut p = std::env::current_exe().unwrap();
    p.pop(); // deps/
    p.pop(); // debug/ (or release/)
    p.push(format!("fairhms{}", std::env::consts::EXE_SUFFIX));
    p
}

fn tmp(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join("fairhms_cli_test");
    std::fs::create_dir_all(&dir).unwrap();
    dir.join(name)
}

#[test]
fn gen_stats_solve_pipeline() {
    let csv = tmp("cli_data.csv");
    let gen = Command::new(bin())
        .args([
            "gen", "--out",
            csv.to_str().unwrap(),
            "--n", "300", "--d", "2", "--c", "3", "--seed", "5",
        ])
        .output()
        .expect("run gen");
    assert!(gen.status.success(), "gen: {}", String::from_utf8_lossy(&gen.stderr));
    assert!(csv.exists());

    let stats = Command::new(bin())
        .args(["stats", "--input", csv.to_str().unwrap(), "--dim", "2"])
        .output()
        .expect("run stats");
    assert!(stats.status.success());
    let out = String::from_utf8_lossy(&stats.stdout);
    assert!(out.contains("n=300"), "stats output: {out}");
    assert!(out.contains("group"), "stats output: {out}");

    for alg in ["intcov", "bigreedy", "bigreedy+", "f-greedy", "g-greedy", "streaming"] {
        let solve = Command::new(bin())
            .args([
                "solve", "--input",
                csv.to_str().unwrap(),
                "--dim", "2", "--k", "5", "--alg", alg,
            ])
            .output()
            .expect("run solve");
        assert!(
            solve.status.success(),
            "solve --alg {alg}: {}",
            String::from_utf8_lossy(&solve.stderr)
        );
        let out = String::from_utf8_lossy(&solve.stdout);
        assert!(out.contains("err(S)    : 0"), "--alg {alg}: {out}");
        assert!(out.contains("mhr"), "--alg {alg}: {out}");
    }
}

#[test]
fn solve_balanced_and_no_skyline_flags() {
    let csv = tmp("cli_flags.csv");
    Command::new(bin())
        .args([
            "gen", "--out",
            csv.to_str().unwrap(),
            "--n", "200", "--d", "3", "--c", "2", "--kind", "uniform",
        ])
        .output()
        .expect("run gen");
    let solve = Command::new(bin())
        .args([
            "solve", "--input",
            csv.to_str().unwrap(),
            "--dim", "3", "--k", "4", "--balanced", "--no-skyline",
        ])
        .output()
        .expect("run solve");
    assert!(
        solve.status.success(),
        "{}",
        String::from_utf8_lossy(&solve.stderr)
    );
}

#[test]
fn helpful_errors() {
    let out = Command::new(bin()).output().expect("run bare");
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("USAGE"));

    let out = Command::new(bin())
        .args(["solve", "--input", "/nonexistent.csv", "--dim", "2", "--k", "3"])
        .output()
        .expect("run solve");
    assert!(!out.status.success());

    let out = Command::new(bin())
        .args(["frobnicate"])
        .output()
        .expect("run unknown");
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown command"));
}
