//! Cross-crate exactness checks: IntCov vs brute-force enumeration, the
//! envelope evaluator vs the LP evaluator, and BiGreedy against the exact
//! optimum.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use fairhms::core::bigreedy::{bigreedy, BiGreedyConfig};
use fairhms::core::eval::{mhr_exact_2d, mhr_exact_lp};
use fairhms::core::intcov::intcov;
use fairhms::core::types::FairHmsInstance;
use fairhms::data::Dataset;

fn random_2d_instance(seed: u64, n: usize, c: usize, k: usize) -> FairHmsInstance {
    let mut rng = StdRng::seed_from_u64(seed);
    let points: Vec<f64> = (0..2 * n).map(|_| rng.gen::<f64>()).collect();
    let groups: Vec<usize> = (0..n).map(|_| rng.gen_range(0..c)).collect();
    let mut data = Dataset::new(
        "rand",
        2,
        points,
        groups,
        (0..c).map(|g| format!("g{g}")).collect(),
    )
    .unwrap();
    data.normalize();
    FairHmsInstance::new(data, k, vec![0; c], vec![k; c]).unwrap()
}

fn brute_force_optimum(inst: &FairHmsInstance) -> f64 {
    let n = inst.len();
    let k = inst.k();
    let mut best = 0.0_f64;
    let mut sel = vec![0usize; k];
    fn rec(
        inst: &FairHmsInstance,
        sel: &mut Vec<usize>,
        depth: usize,
        start: usize,
        best: &mut f64,
    ) {
        let k = sel.len();
        if depth == k {
            if inst.matroid().is_feasible(sel) {
                let m = mhr_exact_2d(inst.data(), sel);
                if m > *best {
                    *best = m;
                }
            }
            return;
        }
        for i in start..inst.len() {
            sel[depth] = i;
            rec(inst, sel, depth + 1, i + 1, best);
        }
    }
    rec(inst, &mut sel, 0, 0, &mut best);
    let _ = n;
    best
}

#[test]
fn intcov_matches_brute_force_unconstrained() {
    for seed in 0..6 {
        let inst = random_2d_instance(seed, 12, 1, 3);
        let sol = intcov(&inst).unwrap();
        let opt = brute_force_optimum(&inst);
        assert!(
            (sol.mhr.unwrap() - opt).abs() < 1e-7,
            "seed {seed}: intcov {} vs brute {opt}",
            sol.mhr.unwrap()
        );
    }
}

#[test]
fn intcov_matches_brute_force_with_fairness() {
    for seed in 0..6 {
        let mut rng = StdRng::seed_from_u64(100 + seed);
        let n = 10;
        let c = 2;
        let points: Vec<f64> = (0..2 * n).map(|_| rng.gen::<f64>()).collect();
        let groups: Vec<usize> = (0..n).map(|i| i % c).collect();
        let mut data =
            Dataset::new("rand", 2, points, groups, vec!["a".into(), "b".into()]).unwrap();
        data.normalize();
        let inst = FairHmsInstance::new(data, 3, vec![1, 1], vec![2, 2]).unwrap();
        let sol = intcov(&inst).unwrap();
        assert!(inst.matroid().is_feasible(&sol.indices));
        let opt = brute_force_optimum(&inst);
        assert!(
            (sol.mhr.unwrap() - opt).abs() < 1e-7,
            "seed {seed}: intcov {} vs brute {opt}",
            sol.mhr.unwrap()
        );
    }
}

#[test]
fn envelope_and_lp_evaluators_agree_on_random_data() {
    for seed in 0..10 {
        let inst = random_2d_instance(seed, 30, 2, 4);
        let mut rng = StdRng::seed_from_u64(seed * 31 + 7);
        let sel: Vec<usize> = (0..4).map(|_| rng.gen_range(0..inst.len())).collect();
        let a = mhr_exact_2d(inst.data(), &sel);
        let b = mhr_exact_lp(inst.data(), &sel);
        assert!((a - b).abs() < 1e-6, "seed {seed}: {a} vs {b}");
    }
}

#[test]
fn bigreedy_never_beats_the_exact_optimum() {
    for seed in 0..5 {
        let inst = random_2d_instance(seed, 20, 2, 4);
        let exact = intcov(&inst).unwrap();
        let bg = bigreedy(&inst, &BiGreedyConfig::paper_default(4, 2)).unwrap();
        let bg_exact = mhr_exact_2d(inst.data(), &bg.indices);
        assert!(
            bg_exact <= exact.mhr.unwrap() + 1e-9,
            "seed {seed}: approximation {bg_exact} beats optimum {}",
            exact.mhr.unwrap()
        );
        // ...and stays within a sane factor of it
        assert!(
            bg_exact >= 0.5 * exact.mhr.unwrap() - 1e-9,
            "seed {seed}: {bg_exact} below half of {}",
            exact.mhr.unwrap()
        );
    }
}
