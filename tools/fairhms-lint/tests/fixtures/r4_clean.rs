// R4 fixture: the sanctioned recover-and-count helpers; must scan clean.
use fairhms_obs::sync::{lock_or_recover, wait_or_recover};
use std::sync::{Condvar, Mutex};

fn sanctioned(m: &Mutex<u32>, cv: &Condvar) {
    let mut g = lock_or_recover(m);
    while *g == 0 {
        g = wait_or_recover(cv, g);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    #[test]
    fn tests_may_unwrap() {
        let m = Mutex::new(1u32);
        assert_eq!(*m.lock().unwrap(), 1);
    }
}
