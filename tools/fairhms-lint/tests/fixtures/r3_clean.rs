// R3 fixture: justified orderings; must scan clean.
use std::sync::atomic::{AtomicU64, Ordering};

static HITS: AtomicU64 = AtomicU64::new(0);

fn bump() {
    // ordering: independent stat counter, no cross-variable sync.
    HITS.fetch_add(1, Ordering::Relaxed);
}

#[cfg(test)]
mod tests {
    use super::*;
    #[test]
    fn test_code_is_exempt() {
        HITS.store(0, Ordering::Relaxed);
    }
}
