// R2 fixture: unsafe without a SAFETY comment (scanned as if it lived
// in an allowlisted kernel file; the same source scanned under a
// non-allowlisted path must flag every unsafe, commented or not).
fn peek(xs: &[f64]) -> f64 {
    unsafe { *xs.get_unchecked(0) }
}
