// R4 fixture: bare poison-propagating lock calls.
use std::sync::{Condvar, Mutex, RwLock};

fn bare(m: &Mutex<u32>, rw: &RwLock<u32>, cv: &Condvar) {
    let g = m.lock().unwrap();
    let r = rw.read().expect("poisoned");
    let w = rw.write().unwrap();
    let g2 = cv.wait(g).unwrap();
    drop((r, w, g2));
}
