// R5 fixture: clock reads and Dataset deep-clones on a serving path.
use std::time::Instant;

fn timed_solve() -> u64 {
    let start = Instant::now();
    start.elapsed().as_micros() as u64
}

fn copy_rows(data: &Dataset) -> Dataset {
    data.clone()
}
