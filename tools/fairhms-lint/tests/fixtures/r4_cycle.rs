// R4 fixture: two paths acquire the same pair of locks in opposite
// orders — the lock-order graph must contain a cycle.
use fairhms_obs::sync::lock_or_recover;
use std::sync::Mutex;

struct Pair {
    alpha: Mutex<u32>,
    beta: Mutex<u32>,
}

impl Pair {
    fn forward(&self) -> u32 {
        let a = lock_or_recover(&self.alpha);
        let b = lock_or_recover(&self.beta);
        *a + *b
    }

    fn backward(&self) -> u32 {
        let b = lock_or_recover(&self.beta);
        let a = lock_or_recover(&self.alpha);
        *a - *b
    }
}
