// R6 fixture: wire literals that would split a newline-framed response.
fn render() -> String {
    "OK pong\nextra".to_string()
}

fn render_err() -> String {
    "ERR bad\rframe".to_string()
}
