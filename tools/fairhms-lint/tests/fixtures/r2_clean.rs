// R2 fixture: documented unsafe in an allowlisted file; must scan clean.
fn peek(xs: &[f64]) -> f64 {
    // SAFETY: callers guarantee xs is non-empty (checked at the public
    // entry point), so index 0 is in bounds.
    unsafe { *xs.get_unchecked(0) }
}
