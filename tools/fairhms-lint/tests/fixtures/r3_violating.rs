// R3 fixture: unjustified atomic orderings.
use std::sync::atomic::{AtomicU64, Ordering};

static HITS: AtomicU64 = AtomicU64::new(0);

fn bump() {
    HITS.fetch_add(1, Ordering::Relaxed);
}

fn fence_everything() {
    // ordering: justified, but SeqCst outside the allowlist still fails.
    HITS.store(0, Ordering::SeqCst);
}
