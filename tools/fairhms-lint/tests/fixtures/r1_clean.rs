// R1 fixture: sanctioned total-order comparators; must scan clean.
use std::cmp::Ordering as CmpOrdering;

fn sort_scores(xs: &mut Vec<f64>) {
    xs.sort_by(|a, b| a.total_cmp(b));
}

// The trait impl itself mentions partial_cmp but is not a call site.
struct Score(f64);
impl PartialOrd for Score {
    fn partial_cmp(&self, other: &Self) -> Option<CmpOrdering> {
        Some(self.0.total_cmp(&other.0))
    }
}
impl PartialEq for Score {
    fn eq(&self, other: &Self) -> bool {
        self.0 == other.0
    }
}

// Mentions in comments and strings never fire: partial_cmp().unwrap()
const DOC: &str = "partial_cmp(x).unwrap() is banned";
