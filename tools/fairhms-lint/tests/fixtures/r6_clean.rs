// R6 fixture: frame-safe wire literals; must scan clean.
fn render() -> String {
    "OK pong".to_string()
}

fn render_long() -> String {
    // A rustfmt line-continuation is not a frame break.
    "OK hits=0 misses=0 entries=0 evictions=0 \
     hit_rate=0"
        .to_string()
}

fn not_wire() -> String {
    // Doesn't start with "OK "/"ERR ", so framing rules don't apply.
    "payload\nwith\nlines".to_string()
}
