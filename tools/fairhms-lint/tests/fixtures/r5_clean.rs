// R5 fixture: gated and waived time reads; must scan clean.
use std::time::Instant;

fn gated_span(rec: &Recorder) -> Option<Instant> {
    rec.enabled().then(Instant::now)
}

fn deadline() -> Instant {
    // fairhms-lint: allow(R5) admission-control deadline stamp: queue
    // age must be priced with telemetry off too.
    Instant::now()
}

fn share(data: &std::sync::Arc<Dataset>) -> std::sync::Arc<Dataset> {
    std::sync::Arc::clone(data)
}
