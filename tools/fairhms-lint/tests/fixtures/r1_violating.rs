// R1 fixture: NaN-panicking float comparators the lint must flag.
fn sort_scores(xs: &mut Vec<f64>) {
    xs.sort_by(|a, b| a.partial_cmp(b).unwrap());
}

fn best(xs: &[(usize, f64)]) -> Option<usize> {
    xs.iter()
        .max_by(|a, b| a.1.partial_cmp(&b.1).expect("nan"))
        .map(|(i, _)| *i)
}
