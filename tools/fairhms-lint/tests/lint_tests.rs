//! Fixture tests: every rule R1–R6 demonstrably fires on its violating
//! fixture at the exact expected line, stays quiet on the clean one,
//! and the live repo itself scans clean under `--deny-all` semantics.

use fairhms_lint::{scan_repo, scan_source, scan_source_locks};
use std::path::{Path, PathBuf};

fn fixture(name: &str) -> String {
    let p = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name);
    std::fs::read_to_string(&p).unwrap_or_else(|e| panic!("read {}: {e}", p.display()))
}

/// (rule, line) pairs of the diagnostics in a scan, unwaived only.
fn fired(path: &str, src: &str) -> Vec<(&'static str, usize)> {
    scan_source(path, src, false)
        .into_iter()
        .filter(|d| !d.waived)
        .map(|d| (d.rule, d.line))
        .collect()
}

const LIB_PATH: &str = "crates/service/src/engine.rs";

#[test]
fn r1_fires_on_partial_cmp_unwrap_and_expect() {
    let got = fired(LIB_PATH, &fixture("r1_violating.rs"));
    assert_eq!(got, vec![("R1", 3), ("R1", 8)]);
}

#[test]
fn r1_clean_total_cmp_and_trait_impl_pass() {
    assert_eq!(fired(LIB_PATH, &fixture("r1_clean.rs")), vec![]);
}

#[test]
fn r2_fires_on_missing_safety_comment_in_allowlisted_file() {
    let got = fired("crates/geometry/src/kernel.rs", &fixture("r2_violating.rs"));
    assert_eq!(got, vec![("R2", 5)]);
}

#[test]
fn r2_fires_on_unsafe_outside_the_allowlist_even_with_safety() {
    // The clean fixture carries a SAFETY comment; in a non-allowlisted
    // file the confinement half of R2 still rejects it.
    let got = fired("crates/core/src/registry.rs", &fixture("r2_clean.rs"));
    assert_eq!(got, vec![("R2", 5)]);
}

#[test]
fn r2_clean_documented_unsafe_in_allowlisted_file_passes() {
    let got = fired("crates/geometry/src/kernel.rs", &fixture("r2_clean.rs"));
    assert_eq!(got, vec![]);
}

#[test]
fn r3_fires_on_unjustified_ordering_and_stray_seqcst() {
    let got = fired(LIB_PATH, &fixture("r3_violating.rs"));
    assert_eq!(got, vec![("R3", 7), ("R3", 12)]);
}

#[test]
fn r3_seqcst_allowed_inside_the_allowlist_with_justification() {
    let got = fired("crates/service/src/server.rs", &fixture("r3_violating.rs"));
    // Line 12 has an `// ordering:` comment, so inside the allowlist
    // only the unjustified Relaxed at line 7 remains.
    assert_eq!(got, vec![("R3", 7)]);
}

#[test]
fn r3_clean_justified_orderings_and_test_code_pass() {
    assert_eq!(fired(LIB_PATH, &fixture("r3_clean.rs")), vec![]);
}

#[test]
fn r4_fires_on_every_bare_lock_unwrap_flavor() {
    let got = fired(LIB_PATH, &fixture("r4_violating.rs"));
    assert_eq!(got, vec![("R4", 5), ("R4", 6), ("R4", 7), ("R4", 8)]);
}

#[test]
fn r4_clean_recover_helpers_and_test_unwraps_pass() {
    assert_eq!(fired(LIB_PATH, &fixture("r4_clean.rs")), vec![]);
}

#[test]
fn r4_lock_graph_finds_the_opposite_order_cycle() {
    let g = scan_source_locks("crates/service/src/cycle.rs", &fixture("r4_cycle.rs"));
    assert_eq!(g.sites.len(), 4);
    let cycles = g.cycles();
    assert!(
        !cycles.is_empty(),
        "opposite-order acquisitions must produce a cycle; edges: {:?}",
        g.edges
    );
    let locks: Vec<&str> = cycles[0].iter().map(String::as_str).collect();
    assert!(locks.contains(&"cycle.alpha") && locks.contains(&"cycle.beta"));
}

#[test]
fn r4_lock_graph_consistent_order_has_edges_but_no_cycle() {
    // Drop `backward` from the fixture: only alpha -> beta remains.
    let src = fixture("r4_cycle.rs");
    let forward_only = &src[..src.find("    fn backward").unwrap()];
    let g = scan_source_locks("crates/service/src/cycle.rs", forward_only);
    assert!(g
        .edges
        .iter()
        .any(|e| e.held == "cycle.alpha" && e.acquired == "cycle.beta"));
    assert!(g.cycles().is_empty());
}

#[test]
fn r5_fires_on_clock_read_and_dataset_clone() {
    let got = fired(LIB_PATH, &fixture("r5_violating.rs"));
    assert_eq!(got, vec![("R5", 5), ("R5", 10)]);
}

#[test]
fn r5_clean_gated_waived_and_arc_shared_pass() {
    let diags = scan_source(LIB_PATH, &fixture("r5_clean.rs"), false);
    assert!(diags.iter().all(|d| d.waived), "diags: {diags:?}");
    // The waived deadline stamp is still visible (and counted) in the
    // report rather than silently dropped.
    assert_eq!(diags.iter().filter(|d| d.waived).count(), 1);
    assert!(diags[0]
        .waiver_reason
        .as_deref()
        .unwrap()
        .contains("deadline"));
}

#[test]
fn r5_clock_reads_are_free_in_bench_and_obs() {
    // In obs, only the Dataset clone fires; Instant::now is sanctioned.
    let got = fired("crates/obs/src/lib.rs", &fixture("r5_violating.rs"));
    assert_eq!(got, vec![("R5", 10)]);
    // The bench harness measures time and round-trips datasets on
    // purpose: both halves of R5 are off there.
    assert_eq!(
        fired("crates/bench/src/harness.rs", &fixture("r5_violating.rs")),
        vec![]
    );
}

#[test]
fn r6_fires_on_frame_breaking_wire_literals() {
    let got = fired(
        "crates/service/src/protocol.rs",
        &fixture("r6_violating.rs"),
    );
    assert_eq!(got, vec![("R6", 3), ("R6", 7)]);
}

#[test]
fn r6_clean_continuations_and_non_wire_literals_pass() {
    let got = fired("crates/service/src/protocol.rs", &fixture("r6_clean.rs"));
    assert_eq!(got, vec![]);
}

#[test]
fn r6_only_applies_to_the_service_wire_layer() {
    assert_eq!(
        fired("crates/core/src/lib.rs", &fixture("r6_violating.rs")),
        vec![]
    );
}

#[test]
fn waiver_without_a_reason_does_not_waive() {
    let src = "fn f() {\n    // fairhms-lint: allow(R5)\n    let t = std::time::Instant::now();\n    let _ = t;\n}\n";
    let got = fired(LIB_PATH, src);
    assert_eq!(got, vec![("R5", 3)]);
}

#[test]
fn commented_out_violations_never_fire() {
    let src = "// let g = m.lock().unwrap();\n/* Instant::now() */\nfn f() {}\n";
    assert_eq!(fired(LIB_PATH, src), vec![]);
}

/// The self-check the whole PR hangs on: the live repo scans clean
/// under `--deny-all` semantics, with a populated, acyclic lock graph.
#[test]
fn live_repo_scans_clean() {
    let root = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../..");
    let report = scan_repo(&root).expect("scan the live repo");
    let unwaived: Vec<_> = report.unwaived().collect();
    assert!(
        unwaived.is_empty(),
        "live repo has unwaived diagnostics: {unwaived:?}"
    );
    assert!(
        report.cycles.is_empty(),
        "live repo lock-order cycles: {:?}",
        report.cycles
    );
    assert!(
        report.lock_graph.sites.len() >= 4,
        "expected >=4 lock acquisition sites, found {}",
        report.lock_graph.sites.len()
    );
    assert!(report.files_scanned > 50, "suspiciously small scan");
}
