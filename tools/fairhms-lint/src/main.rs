//! CLI front end for fairhms-lint. See `--help`.

use fairhms_lint::scan_repo;
use std::path::PathBuf;
use std::process::ExitCode;

const HELP: &str = "\
fairhms-lint: repo-invariant static analysis for the fairhms workspace

Enforced rules (see docs/ARCHITECTURE.md, \"Static analysis & enforced
invariants\", for the full table and waiver policy):

  R1  float comparators use f64::total_cmp, never partial_cmp().unwrap()
  R2  every `unsafe` carries a // SAFETY: comment and sits in an
      allowlisted kernel file
  R3  every Ordering::X use carries an // ordering: justification;
      SeqCst is deny-by-default outside the allowlist
  R4  the static lock-order graph is acyclic, and non-test code never
      calls bare lock()/read()/write()/wait() + unwrap (use the
      fairhms_obs::sync::*_or_recover helpers)
  R5  serving paths never read the clock (telemetry-gated reads and
      waived functional uses excepted) and never deep-clone a Dataset
  R6  \"OK …\"/\"ERR …\" wire literals never embed \\n or \\r

A site is waived inline with `// fairhms-lint: allow(RX) <reason>`; the
reason is mandatory and waivers are counted in the report.

USAGE:
  fairhms-lint [--root PATH] [--json] [--deny-all] [--max-waivers N]

OPTIONS:
  --root PATH       repo root to scan (default: .)
  --json            emit the machine-readable report on stdout
  --deny-all        exit 1 on any unwaived diagnostic or lock cycle
  --max-waivers N   additionally exit 1 if more than N waivers are in
                    effect (CI pins this to the recorded baseline so new
                    waivers need a deliberate bump)
  -h, --help        this text
";

fn main() -> ExitCode {
    let mut root = PathBuf::from(".");
    let mut json = false;
    let mut deny_all = false;
    let mut max_waivers: Option<usize> = None;

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--root" => match args.next() {
                Some(p) => root = PathBuf::from(p),
                None => return usage_error("--root needs a path"),
            },
            "--json" => json = true,
            "--deny-all" => deny_all = true,
            "--max-waivers" => match args.next().and_then(|n| n.parse().ok()) {
                Some(n) => max_waivers = Some(n),
                None => return usage_error("--max-waivers needs an integer"),
            },
            "-h" | "--help" => {
                print!("{HELP}");
                return ExitCode::SUCCESS;
            }
            other => return usage_error(&format!("unknown argument `{other}`")),
        }
    }

    let report = match scan_repo(&root) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("fairhms-lint: scan failed: {e}");
            return ExitCode::FAILURE;
        }
    };

    if json {
        print!("{}", report.to_json());
    } else {
        for d in report.unwaived() {
            println!("{}:{}: [{}] {}", d.path, d.line, d.rule, d.message);
        }
        for cyc in &report.cycles {
            println!("lock-order cycle: [R4] {}", cyc.join(" -> "));
        }
        let unwaived = report.unwaived().count();
        println!(
            "fairhms-lint: {} files, {} lock sites across {} locks, {} edges; \
             {} unwaived diagnostics, {} waivers, {} lock cycles",
            report.files_scanned,
            report.lock_graph.sites.len(),
            report.lock_graph.locks().len(),
            {
                let mut e: Vec<_> = report
                    .lock_graph
                    .edges
                    .iter()
                    .map(|e| (e.held.as_str(), e.acquired.as_str()))
                    .collect();
                e.sort();
                e.dedup();
                e.len()
            },
            unwaived,
            report.waiver_count(),
            report.cycles.len()
        );
    }

    let mut fail = false;
    if deny_all && !report.clean() {
        fail = true;
    }
    if let Some(cap) = max_waivers {
        if report.waiver_count() > cap {
            eprintln!(
                "fairhms-lint: waiver count {} exceeds the recorded baseline {}; either \
                 remove a waiver or bump the baseline in scripts/ci.sh with a justification",
                report.waiver_count(),
                cap
            );
            fail = true;
        }
    }
    if fail {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

fn usage_error(msg: &str) -> ExitCode {
    eprintln!("fairhms-lint: {msg}\n\n{HELP}");
    ExitCode::FAILURE
}
