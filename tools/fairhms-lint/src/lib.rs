//! fairhms-lint — repo-invariant static analysis for the fairhms
//! workspace.
//!
//! Mechanically enforces the contracts earlier PRs established by
//! convention: bit-identity of float comparators (R1), documented and
//! confined `unsafe` (R2), justified atomic orderings with SeqCst
//! deny-by-default (R3), an acyclic lock-order graph plus
//! poison-recovering lock discipline (R4), clock-free and clone-free
//! hot paths (R5), and newline-safe wire literals (R6).
//!
//! Std-only by design: the scanner is a masking lexer
//! ([`lexer`]), not a parser, so the tool builds in the same
//! no-external-deps envelope as the rest of the workspace and runs in
//! CI as `cargo run -p fairhms-lint -- --deny-all`.

pub mod lexer;
pub mod lockgraph;
pub mod rules;

use lockgraph::LockGraph;
use rules::Diagnostic;
use std::fs;
use std::path::{Path, PathBuf};

/// Full scan result for one repo.
#[derive(Debug)]
pub struct Report {
    /// Every finding, waived or not, sorted by path then line.
    pub diagnostics: Vec<Diagnostic>,
    /// The lock-order graph across all scanned files.
    pub lock_graph: LockGraph,
    /// Lock-order cycles (each a lock-name loop). Non-empty fails.
    pub cycles: Vec<Vec<String>>,
    /// Number of files scanned.
    pub files_scanned: usize,
}

impl Report {
    /// Findings not covered by an inline waiver.
    pub fn unwaived(&self) -> impl Iterator<Item = &Diagnostic> {
        self.diagnostics.iter().filter(|d| !d.waived)
    }

    /// Number of inline waivers in effect.
    pub fn waiver_count(&self) -> usize {
        self.diagnostics.iter().filter(|d| d.waived).count()
    }

    /// True when the repo passes under `--deny-all`.
    pub fn clean(&self) -> bool {
        self.unwaived().next().is_none() && self.cycles.is_empty()
    }

    /// Serializes the report as JSON (hand-rolled; std-only crate).
    pub fn to_json(&self) -> String {
        let mut s = String::from("{\n  \"diagnostics\": [\n");
        for (i, d) in self.diagnostics.iter().enumerate() {
            s.push_str(&format!(
                "    {{\"rule\": \"{}\", \"path\": \"{}\", \"line\": {}, \"waived\": {}, \
                 \"message\": \"{}\"}}{}\n",
                d.rule,
                json_escape(&d.path),
                d.line,
                d.waived,
                json_escape(&d.message),
                if i + 1 < self.diagnostics.len() {
                    ","
                } else {
                    ""
                }
            ));
        }
        s.push_str("  ],\n");
        s.push_str(&format!(
            "  \"waivers\": {},\n  \"files_scanned\": {},\n",
            self.waiver_count(),
            self.files_scanned
        ));
        let locks = self.lock_graph.locks();
        s.push_str(&format!(
            "  \"lock_sites\": {},\n  \"locks\": [{}],\n",
            self.lock_graph.sites.len(),
            locks
                .iter()
                .map(|l| format!("\"{}\"", json_escape(l)))
                .collect::<Vec<_>>()
                .join(", ")
        ));
        let mut edges: Vec<String> = self
            .lock_graph
            .edges
            .iter()
            .map(|e| {
                format!(
                    "\"{} -> {}\"",
                    json_escape(&e.held),
                    json_escape(&e.acquired)
                )
            })
            .collect();
        edges.sort();
        edges.dedup();
        s.push_str(&format!("  \"lock_edges\": [{}],\n", edges.join(", ")));
        s.push_str(&format!(
            "  \"cycles\": [{}]\n}}\n",
            self.cycles
                .iter()
                .map(|c| format!("\"{}\"", json_escape(&c.join(" -> "))))
                .collect::<Vec<_>>()
                .join(", ")
        ));
        s
    }
}

fn json_escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

/// Scans the repo rooted at `root`: `src/`, `examples/`, and every
/// `crates/*/{src,tests,benches}` tree. `vendor/` stand-ins and
/// `target/` are never scanned.
pub fn scan_repo(root: &Path) -> std::io::Result<Report> {
    let mut files: Vec<(PathBuf, bool)> = Vec::new(); // (path, whole_file_test)
    collect_rs(&root.join("src"), false, &mut files)?;
    collect_rs(&root.join("examples"), true, &mut files)?;
    let crates_dir = root.join("crates");
    if crates_dir.is_dir() {
        let mut members: Vec<PathBuf> = fs::read_dir(&crates_dir)?
            .filter_map(|e| e.ok())
            .map(|e| e.path())
            .filter(|p| p.is_dir())
            .collect();
        members.sort();
        for member in members {
            collect_rs(&member.join("src"), false, &mut files)?;
            collect_rs(&member.join("tests"), true, &mut files)?;
            collect_rs(&member.join("benches"), true, &mut files)?;
        }
    }
    files.sort();

    let mut diagnostics = Vec::new();
    let mut lock_graph = LockGraph::default();
    let files_scanned = files.len();
    for (path, whole_file_test) in files {
        let src = fs::read_to_string(&path)?;
        let rel = rel_path(root, &path);
        let lx = lexer::lex(&rel, &src, whole_file_test);
        rules::r1_partial_cmp(&lx, &mut diagnostics);
        rules::r2_unsafe(&lx, &mut diagnostics);
        rules::r3_ordering(&lx, &mut diagnostics);
        rules::r4_bare_lock(&lx, &mut diagnostics);
        rules::r5_hot_path(&lx, &mut diagnostics);
        rules::r6_wire_literals(&lx, &mut diagnostics);
        lockgraph::scan_file(&lx, &mut lock_graph);
    }
    diagnostics.sort_by(|a, b| (&a.path, a.line, a.rule).cmp(&(&b.path, b.line, b.rule)));
    let cycles = lock_graph.cycles();
    Ok(Report {
        diagnostics,
        lock_graph,
        cycles,
        files_scanned,
    })
}

/// Lexes and checks a single source string (fixture tests use this).
pub fn scan_source(rel_path: &str, src: &str, whole_file_test: bool) -> Vec<Diagnostic> {
    let lx = lexer::lex(rel_path, src, whole_file_test);
    let mut diagnostics = Vec::new();
    rules::r1_partial_cmp(&lx, &mut diagnostics);
    rules::r2_unsafe(&lx, &mut diagnostics);
    rules::r3_ordering(&lx, &mut diagnostics);
    rules::r4_bare_lock(&lx, &mut diagnostics);
    rules::r5_hot_path(&lx, &mut diagnostics);
    rules::r6_wire_literals(&lx, &mut diagnostics);
    diagnostics.sort_by(|a, b| (a.line, a.rule).cmp(&(b.line, b.rule)));
    diagnostics
}

/// Builds a lock graph from a single source string (fixture tests).
pub fn scan_source_locks(rel_path: &str, src: &str) -> LockGraph {
    let lx = lexer::lex(rel_path, src, false);
    let mut g = LockGraph::default();
    lockgraph::scan_file(&lx, &mut g);
    g
}

fn collect_rs(
    dir: &Path,
    whole_file_test: bool,
    out: &mut Vec<(PathBuf, bool)>,
) -> std::io::Result<()> {
    if !dir.is_dir() {
        return Ok(());
    }
    let mut entries: Vec<PathBuf> = fs::read_dir(dir)?
        .filter_map(|e| e.ok())
        .map(|e| e.path())
        .collect();
    entries.sort();
    for path in entries {
        if path.is_dir() {
            let name = path.file_name().and_then(|n| n.to_str()).unwrap_or("");
            if name == "target" || name == "fixtures" {
                continue;
            }
            collect_rs(&path, whole_file_test, out)?;
        } else if path.extension().and_then(|e| e.to_str()) == Some("rs") {
            // Binaries live under src/bin; mark them by path, not as test.
            out.push((path, whole_file_test));
        }
    }
    Ok(())
}

fn rel_path(root: &Path, path: &Path) -> String {
    path.strip_prefix(root)
        .unwrap_or(path)
        .to_string_lossy()
        .replace('\\', "/")
}
