//! The rule set R1–R6. Every check runs over a [`LexedFile`] — masked
//! code plus comment/literal side tables — so commented-out code and
//! string contents can never fire a rule.
//!
//! | rule | invariant |
//! |------|-----------|
//! | R1 | float comparators use `f64::total_cmp`, never `partial_cmp().unwrap()` |
//! | R2 | every `unsafe` carries a `// SAFETY:` comment and sits in an allowlisted file |
//! | R3 | every `Ordering::X` use carries an `// ordering:` justification; `SeqCst` deny-by-default |
//! | R4 | lock-order graph is acyclic; no bare `lock().unwrap()` in non-test code |
//! | R5 | no clock reads or Dataset deep-clones outside sanctioned sites |
//! | R6 | wire literals (`"OK …"` / `"ERR …"`) never embed `\n` / `\r` |
//!
//! A diagnostic at line L is waived by `// fairhms-lint: allow(RX) <reason>`
//! on the same line or in the contiguous comment block above it; a bare
//! `allow(RX)` with no reason does **not** waive. Waivers are counted
//! and reported so CI can hold the line on their number.

use crate::lexer::LexedFile;

/// One finding.
#[derive(Debug, Clone)]
pub struct Diagnostic {
    /// Stable rule ID: "R1".."R6" (lock-graph cycles report as "R4").
    pub rule: &'static str,
    pub path: String,
    pub line: usize,
    pub message: String,
    /// True when an inline waiver covers this site.
    pub waived: bool,
    /// The waiver reason, when waived.
    pub waiver_reason: Option<String>,
}

/// Files allowed to contain `unsafe` at all (R2). Everything else fails
/// even with a SAFETY comment — widening this list is a reviewed change
/// to the lint, not a per-site waiver.
pub const UNSAFE_ALLOWLIST: &[&str] = &[
    "crates/service/src/reactor.rs",
    "crates/geometry/src/soa.rs",
    "crates/geometry/src/kernel.rs",
    "tools/fairhms-lint",
];

/// Files allowed to use `Ordering::SeqCst` (R3): stop flags and the
/// stream-gate permits, where the full fence is the documented intent,
/// plus the dataset deep-clone test probe.
pub const SEQCST_ALLOWLIST: &[&str] = &[
    "crates/service/src/server.rs",
    "crates/service/src/event.rs",
    "crates/data/src/dataset.rs",
    "tools/fairhms-lint",
];

/// Directories whose files may read the clock freely (R5): the
/// telemetry crate owns time, the bench harness measures it, binaries
/// and examples report it to humans.
pub const CLOCK_FREE_PREFIXES: &[&str] = &[
    "crates/obs/",
    "crates/bench/",
    "src/bin/",
    "examples/",
    "tools/",
];

/// Checks whether `line` in `lx` carries a waiver for `rule`, returning
/// the reason when it does.
fn waiver_for(lx: &LexedFile, line: usize, rule: &str) -> Option<String> {
    let block = lx.comment_block(line);
    let needle = format!("fairhms-lint: allow({rule})");
    let at = block.find(&needle)?;
    let reason = block[at + needle.len()..]
        .lines()
        .next()
        .unwrap_or("")
        .trim()
        .to_string();
    if reason.is_empty() {
        None // a waiver without a reason is not a waiver
    } else {
        Some(reason)
    }
}

fn push(
    out: &mut Vec<Diagnostic>,
    lx: &LexedFile,
    rule: &'static str,
    line: usize,
    message: String,
) {
    let waiver = waiver_for(lx, line, rule);
    out.push(Diagnostic {
        rule,
        path: lx.path.clone(),
        line,
        waived: waiver.is_some(),
        waiver_reason: waiver,
        message,
    });
}

/// Is byte `i` at a word boundary start of `word` in `text`?
fn word_at(text: &str, i: usize, word: &str) -> bool {
    if !text[i..].starts_with(word) {
        return false;
    }
    let bytes = text.as_bytes();
    let before_ok = i == 0 || !(bytes[i - 1].is_ascii_alphanumeric() || bytes[i - 1] == b'_');
    let after = i + word.len();
    let after_ok =
        after >= bytes.len() || !(bytes[after].is_ascii_alphanumeric() || bytes[after] == b'_');
    before_ok && after_ok
}

/// All word-boundary occurrences of `word` in the masked text.
fn word_offsets(text: &str, word: &str) -> Vec<usize> {
    let mut out = Vec::new();
    let mut from = 0usize;
    while let Some(p) = text[from..].find(word) {
        let at = from + p;
        from = at + word.len();
        if word_at(text, at, word) {
            out.push(at);
        }
    }
    out
}

/// R1 — no `partial_cmp(..).unwrap()` (or `.expect`/`.unwrap_or*`) float
/// comparators. Applies everywhere, tests included: a NaN-panicking sort
/// in a test is still a flaky test. `f64::total_cmp` is the sanctioned
/// comparator (identical order for finite values; total over NaN).
pub fn r1_partial_cmp(lx: &LexedFile, out: &mut Vec<Diagnostic>) {
    for at in word_offsets(&lx.masked, "partial_cmp") {
        // `fn partial_cmp(` is the trait impl itself, not a use.
        let head = lx.masked[..at].trim_end();
        if head.ends_with("fn") {
            continue;
        }
        // Walk the balanced argument list, then look at the next chained call.
        let bytes = lx.masked.as_bytes();
        let mut j = at + "partial_cmp".len();
        if bytes.get(j) != Some(&b'(') {
            continue; // a bare path mention, e.g. in a re-export
        }
        let mut depth = 0i32;
        while j < bytes.len() {
            match bytes[j] {
                b'(' => depth += 1,
                b')' => {
                    depth -= 1;
                    if depth == 0 {
                        j += 1;
                        break;
                    }
                }
                _ => {}
            }
            j += 1;
        }
        let rest = lx.masked[j..].trim_start();
        if rest.starts_with(".unwrap") || rest.starts_with(".expect") {
            let line = lx.line_of(at);
            push(
                out,
                lx,
                "R1",
                line,
                "partial_cmp().unwrap() float comparator: panics on NaN and is not a total \
                 order; use f64::total_cmp"
                    .to_string(),
            );
        }
    }
}

/// R2 — `unsafe` needs a `// SAFETY:` comment on the same line or in the
/// contiguous comment block above, and the file must be on the unsafe
/// allowlist.
pub fn r2_unsafe(lx: &LexedFile, out: &mut Vec<Diagnostic>) {
    let offsets = word_offsets(&lx.masked, "unsafe");
    if offsets.is_empty() {
        return;
    }
    let allowed = UNSAFE_ALLOWLIST.iter().any(|p| lx.path.starts_with(p));
    for at in offsets {
        let line = lx.line_of(at);
        if !allowed {
            push(
                out,
                lx,
                "R2",
                line,
                format!(
                    "unsafe outside the allowlist ({}); move the code into an allowlisted \
                     kernel file or find a safe formulation",
                    UNSAFE_ALLOWLIST.join(", ")
                ),
            );
            continue;
        }
        if !lx.comment_block(line).contains("SAFETY:") {
            push(
                out,
                lx,
                "R2",
                line,
                "unsafe without a `// SAFETY:` comment stating the invariants that make it \
                 sound"
                    .to_string(),
            );
        }
    }
}

/// R3 — every `Ordering::X` memory-ordering use in non-test code needs
/// an `// ordering:` justification; `SeqCst` additionally requires the
/// file to be on the SeqCst allowlist.
pub fn r3_ordering(lx: &LexedFile, out: &mut Vec<Diagnostic>) {
    for variant in ["Relaxed", "Acquire", "Release", "AcqRel", "SeqCst"] {
        let needle = format!("Ordering::{variant}");
        for at in word_offsets(&lx.masked, &needle) {
            let line = lx.line_of(at);
            if lx.test_line(line) {
                continue;
            }
            // `cmp::Ordering` has no such variants, so no disambiguation
            // against comparison orderings is needed.
            if variant == "SeqCst" && !SEQCST_ALLOWLIST.iter().any(|p| lx.path.starts_with(p)) {
                push(
                    out,
                    lx,
                    "R3",
                    line,
                    "Ordering::SeqCst outside the allowlist: SeqCst is deny-by-default; use \
                     Acquire/Release/Relaxed with a justification, or add the file to the \
                     allowlist in a reviewed lint change"
                        .to_string(),
                );
                continue;
            }
            if !lx.comment_block(line).contains("ordering:") {
                push(
                    out,
                    lx,
                    "R3",
                    line,
                    format!(
                        "Ordering::{variant} without an `// ordering:` comment justifying the \
                         memory-ordering choice"
                    ),
                );
            }
        }
    }
}

/// R4b — bare `lock()/read()/write().unwrap()` (or `.expect`) and
/// `Condvar::wait(..).unwrap()` in non-test code. The sanctioned calls
/// are the `fairhms_obs::sync::*_or_recover` helpers, which recover
/// poisoned guards and count the recovery on METRICS.
pub fn r4_bare_lock(lx: &LexedFile, out: &mut Vec<Diagnostic>) {
    let text = &lx.masked;
    for method in [".lock()", ".read()", ".write()"] {
        let mut from = 0usize;
        while let Some(p) = text[from..].find(method) {
            let at = from + p;
            from = at + method.len();
            let line = lx.line_of(at);
            if lx.test_line(line) {
                continue;
            }
            let rest = text[at + method.len()..].trim_start();
            if rest.starts_with(".unwrap") || rest.starts_with(".expect") {
                push(
                    out,
                    lx,
                    "R4",
                    line,
                    format!(
                        "bare `{}` + unwrap/expect propagates lock poison and wedges the \
                         server; use fairhms_obs::sync::{}",
                        method.trim_start_matches('.'),
                        match method {
                            ".read()" => "read_or_recover",
                            ".write()" => "write_or_recover",
                            _ => "lock_or_recover",
                        }
                    ),
                );
            }
        }
    }
    // Condvar waits: `.wait(guard).unwrap()`.
    let mut from = 0usize;
    while let Some(p) = text[from..].find(".wait(") {
        let at = from + p;
        from = at + ".wait(".len();
        let line = lx.line_of(at);
        if lx.test_line(line) {
            continue;
        }
        // Balanced argument list, then the chained call.
        let bytes = text.as_bytes();
        let mut j = at + ".wait".len();
        let mut depth = 0i32;
        while j < bytes.len() {
            match bytes[j] {
                b'(' => depth += 1,
                b')' => {
                    depth -= 1;
                    if depth == 0 {
                        j += 1;
                        break;
                    }
                }
                _ => {}
            }
            j += 1;
        }
        let rest = text[j..].trim_start();
        if rest.starts_with(".unwrap") || rest.starts_with(".expect") {
            push(
                out,
                lx,
                "R4",
                line,
                "bare Condvar::wait().unwrap() propagates lock poison; use \
                 fairhms_obs::sync::wait_or_recover"
                    .to_string(),
            );
        }
    }
}

/// R5 — hot paths don't read the clock and don't deep-clone datasets.
///
/// Clock reads (`Instant::now`, `SystemTime::now`) are free inside the
/// telemetry crate, the bench harness, binaries, and examples; anywhere
/// else they must be telemetry-gated (the line runs through an
/// `enabled()` guard, e.g. `recorder.enabled().then(Instant::now)`) or
/// carry an explicit waiver naming the functional reason.
///
/// `Dataset` deep-clones outside the instrumented `Clone` impl in
/// `crates/data/src/dataset.rs` hide O(n·d) copies on the serving path;
/// they must go through `Arc` sharing instead.
pub fn r5_hot_path(lx: &LexedFile, out: &mut Vec<Diagnostic>) {
    let clock_free = CLOCK_FREE_PREFIXES.iter().any(|p| lx.path.starts_with(p));
    if !clock_free {
        for needle in ["Instant::now", "SystemTime::now"] {
            for at in word_offsets(&lx.masked, needle) {
                let line = lx.line_of(at);
                if lx.test_line(line) {
                    continue;
                }
                if lx.masked_line(line).contains("enabled()") {
                    continue; // telemetry-gated: only runs when spans are on
                }
                push(
                    out,
                    lx,
                    "R5",
                    line,
                    format!(
                        "{needle} on a serving path: gate it behind the telemetry recorder \
                         (`enabled().then(Instant::now)`) or waive with the functional reason"
                    ),
                );
            }
        }
    }
    // Dataset deep-clones: `Dataset::clone(..)` or `<data|dataset>.clone()`.
    if lx.path == "crates/data/src/dataset.rs" || lx.path.starts_with("crates/bench/") {
        return;
    }
    for at in word_offsets(&lx.masked, "Dataset::clone") {
        let line = lx.line_of(at);
        if !lx.test_line(line) {
            push(
                out,
                lx,
                "R5",
                line,
                "Dataset deep-clone outside the instrumented Clone impl; share via Arc<Dataset>"
                    .to_string(),
            );
        }
    }
    let mut from = 0usize;
    while let Some(p) = lx.masked[from..].find(".clone()") {
        let at = from + p;
        from = at + ".clone()".len();
        let head = &lx.masked[..at];
        let recv: String = head
            .chars()
            .rev()
            .take_while(|c| c.is_ascii_alphanumeric() || *c == '_')
            .collect::<String>()
            .chars()
            .rev()
            .collect();
        if recv == "data" || recv == "dataset" {
            let line = lx.line_of(at);
            if !lx.test_line(line) {
                push(
                    out,
                    lx,
                    "R5",
                    line,
                    format!(
                        "`{recv}.clone()` looks like a Dataset deep-clone; share via \
                         Arc<Dataset> (clone the Arc, not the rows)"
                    ),
                );
            }
        }
    }
}

/// R6 — wire safety of protocol literals. The text protocol is
/// newline-framed, so an `"OK …"` / `"ERR …"` literal that embeds `\n`
/// or `\r` would split one response into two frames. Checked in
/// `crates/service/src` only (where the wire format lives). A trailing
/// `\<newline>` line-continuation is legal rustfmt wrapping, not a
/// frame break.
pub fn r6_wire_literals(lx: &LexedFile, out: &mut Vec<Diagnostic>) {
    if !lx.path.starts_with("crates/service/src") {
        return;
    }
    for lit in &lx.strings {
        if !(lit.content.starts_with("OK ") || lit.content.starts_with("ERR ")) {
            continue;
        }
        if embeds_frame_break(&lit.content) {
            push(
                out,
                lx,
                "R6",
                lit.line,
                "wire literal embeds \\n or \\r: the protocol is newline-framed and this \
                 would split the response into two frames"
                    .to_string(),
            );
        }
    }
}

/// Does a literal body (escapes as written) contain an `\n`/`\r` escape
/// or a raw CR/LF that is not a line-continuation?
fn embeds_frame_break(content: &str) -> bool {
    let bytes = content.as_bytes();
    let mut i = 0usize;
    while i < bytes.len() {
        match bytes[i] {
            b'\\' => {
                match bytes.get(i + 1) {
                    Some(b'n') | Some(b'r') => return true,
                    Some(b'\n') => {
                        // Line-continuation: backslash-newline plus the
                        // following indentation is stripped by rustc.
                        i += 2;
                        while i < bytes.len() && (bytes[i] == b' ' || bytes[i] == b'\t') {
                            i += 1;
                        }
                        continue;
                    }
                    _ => i += 2,
                }
            }
            b'\n' | b'\r' => return true,
            _ => i += 1,
        }
    }
    false
}
