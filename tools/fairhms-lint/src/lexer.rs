//! A string/char/comment-aware scanner for Rust source.
//!
//! This is deliberately *not* a parser: the rules in [`crate::rules`]
//! are token-pattern checks, and everything they need is (a) the source
//! with every comment and literal body blanked out — so `unsafe` inside
//! a doc comment or `"partial_cmp"` inside a string can never fire a
//! rule — plus (b) the comment text per line (for the `// SAFETY:` /
//! `// ordering:` / waiver discipline), (c) every string literal with
//! its byte range (for the wire-safety rule), and (d) which lines sit
//! inside `#[cfg(test)]` regions or test-only files.
//!
//! Masking replaces each skipped byte with a space, so byte offsets and
//! line numbers in the masked text equal those in the original file —
//! diagnostics point at real positions without any mapping table.

/// One string literal found in the source.
#[derive(Debug, Clone)]
pub struct StrLit {
    /// 1-based line of the opening quote.
    pub line: usize,
    /// Byte offset of the opening delimiter in the file.
    pub start: usize,
    /// The literal's body (escapes left as written; no unescaping).
    pub content: String,
}

/// A lexed source file: masked code plus the comment/literal side tables.
#[derive(Debug)]
pub struct LexedFile {
    /// Path as registered by the caller (repo-relative, `/`-separated).
    pub path: String,
    /// Source with comments, string/char bodies replaced by spaces.
    /// Identical length and line structure to the original.
    pub masked: String,
    /// Comment text per 1-based line (both `//` and `/* */` parts that
    /// touch the line), concatenated in order of appearance.
    pub comments: Vec<String>,
    /// Whether each 1-based line has any non-comment, non-blank code.
    pub has_code: Vec<bool>,
    /// Whether each 1-based line is inside a `#[cfg(test)]` region (or
    /// the whole file is test-only: under `tests/`, `benches/`,
    /// `examples/`, or `fixtures/`).
    pub is_test: Vec<bool>,
    /// Every string literal (regular, raw, byte) with its position.
    pub strings: Vec<StrLit>,
    /// Byte offset of each line start (index 0 = line 1).
    pub line_starts: Vec<usize>,
}

impl LexedFile {
    /// 1-based line containing byte offset `pos`.
    pub fn line_of(&self, pos: usize) -> usize {
        match self.line_starts.binary_search(&pos) {
            Ok(i) => i + 1,
            Err(i) => i,
        }
    }

    /// Comment text attached to 1-based `line` (empty if none).
    pub fn comment(&self, line: usize) -> &str {
        self.comments
            .get(line - 1)
            .map(String::as_str)
            .unwrap_or("")
    }

    /// Whether 1-based `line` is test code.
    pub fn test_line(&self, line: usize) -> bool {
        self.is_test.get(line - 1).copied().unwrap_or(false)
    }

    /// The comment text of `line` plus every *contiguous* comment-only
    /// line directly above it — the region a `// SAFETY:`/`// ordering:`
    /// justification or waiver may live in. A blank line or a line with
    /// code breaks the chain (attribute-only lines do not).
    pub fn comment_block(&self, line: usize) -> String {
        let mut text = String::new();
        let mut l = line;
        // Walk up over comment-only and attribute-only lines.
        while l >= 2 {
            let above = l - 1;
            let idx = above - 1;
            let above_comment = !self.comments[idx].is_empty();
            let above_attr_only = !self.comments[idx].is_empty() || {
                let s = line_text(&self.masked, &self.line_starts, above).trim();
                !s.is_empty() && s.starts_with("#[") && !self.has_real_code(above)
            };
            if (above_comment && !self.has_real_code(above)) || above_attr_only {
                l = above;
            } else {
                break;
            }
        }
        for cur in l..=line {
            text.push_str(self.comment(cur));
            text.push('\n');
        }
        text
    }

    /// Whether `line` has code other than attributes.
    fn has_real_code(&self, line: usize) -> bool {
        let s = line_text(&self.masked, &self.line_starts, line).trim();
        !s.is_empty() && !s.starts_with("#[") && !s.starts_with("#![")
    }

    /// The masked text of 1-based `line`.
    pub fn masked_line(&self, line: usize) -> &str {
        line_text(&self.masked, &self.line_starts, line)
    }
}

fn line_text<'a>(text: &'a str, starts: &[usize], line: usize) -> &'a str {
    let begin = starts[line - 1];
    let end = starts.get(line).copied().unwrap_or(text.len());
    text[begin..end].trim_end_matches('\n')
}

/// Lexes `src`, attributing it to `path` (repo-relative). `whole_file_test`
/// marks every line as test code regardless of `#[cfg(test)]` regions.
pub fn lex(path: &str, src: &str, whole_file_test: bool) -> LexedFile {
    let bytes = src.as_bytes();
    let mut masked: Vec<u8> = Vec::with_capacity(bytes.len());
    let mut strings = Vec::new();
    let mut line_starts = vec![0usize];
    let mut comments: Vec<String> = vec![String::new()];
    let mut line = 1usize;

    // Push `b` through to the mask (newlines always survive so the line
    // structure is preserved inside comments and literals).
    macro_rules! keep {
        ($b:expr) => {{
            masked.push($b);
            if $b == b'\n' {
                line += 1;
                line_starts.push(masked.len());
                comments.push(String::new());
            }
        }};
    }
    macro_rules! blank {
        ($b:expr) => {{
            if $b == b'\n' {
                keep!(b'\n');
            } else {
                masked.push(b' ');
            }
        }};
    }

    let mut i = 0usize;
    while i < bytes.len() {
        let b = bytes[i];
        match b {
            b'/' if i + 1 < bytes.len() && bytes[i + 1] == b'/' => {
                // Line comment: record text, blank it from the code view.
                let start = i;
                while i < bytes.len() && bytes[i] != b'\n' {
                    i += 1;
                }
                comments[line - 1].push_str(&src[start..i]);
                comments[line - 1].push(' ');
                for &cb in &bytes[start..i] {
                    blank!(cb);
                }
            }
            b'/' if i + 1 < bytes.len() && bytes[i + 1] == b'*' => {
                // Block comment, nesting per Rust rules.
                let mut depth = 1usize;
                let mut j = i + 2;
                let mut seg_start = i;
                while j < bytes.len() && depth > 0 {
                    if bytes[j] == b'/' && j + 1 < bytes.len() && bytes[j + 1] == b'*' {
                        depth += 1;
                        j += 2;
                    } else if bytes[j] == b'*' && j + 1 < bytes.len() && bytes[j + 1] == b'/' {
                        depth -= 1;
                        j += 2;
                    } else {
                        j += 1;
                    }
                }
                for k in i..j {
                    if bytes[k] == b'\n' {
                        comments[line - 1].push_str(src[seg_start..k].trim());
                        comments[line - 1].push(' ');
                        seg_start = k + 1;
                    }
                    blank!(bytes[k]);
                }
                comments[line - 1].push_str(src[seg_start..j].trim());
                comments[line - 1].push(' ');
                i = j;
            }
            b'"' => {
                i = scan_string(src, i, line, &mut strings, |b| blank!(b));
            }
            b'r' | b'b' if starts_raw_or_byte_string(bytes, i) => {
                // Emit the prefix letters as blanks too, then the string.
                let mut j = i;
                while bytes[j] != b'"' && bytes[j] != b'#' {
                    blank!(bytes[j]);
                    j += 1;
                }
                if src[j..].starts_with('#') || bytes[j] == b'"' {
                    i = scan_raw_or_plain(src, j, line, &mut strings, |b| blank!(b));
                } else {
                    i = j;
                }
            }
            b'\'' => {
                // Char literal vs lifetime. A char literal is 'x', '\…', or
                // '\u{…}'; a lifetime is 'ident not followed by a quote.
                if let Some(end) = char_literal_end(bytes, i) {
                    for &cb in &bytes[i..end] {
                        blank!(cb);
                    }
                    i = end;
                } else {
                    keep!(b);
                    i += 1;
                }
            }
            _ => {
                keep!(b);
                i += 1;
            }
        }
    }

    let masked = String::from_utf8(masked).expect("mask preserves UTF-8 via space substitution");
    let n_lines = line_starts.len();
    let mut has_code = vec![false; n_lines];
    for (idx, _) in line_starts.iter().enumerate() {
        let text = line_text(&masked, &line_starts, idx + 1);
        has_code[idx] = !text.trim().is_empty();
    }
    let is_test = if whole_file_test {
        vec![true; n_lines]
    } else {
        mark_test_regions(&masked, &line_starts, n_lines)
    };

    LexedFile {
        path: path.to_string(),
        masked,
        comments,
        has_code,
        is_test,
        strings,
        line_starts,
    }
}

/// `r"…"`, `r#"…"#`, `b"…"`, `br#"…"#` at `i`?
fn starts_raw_or_byte_string(bytes: &[u8], i: usize) -> bool {
    let rest = &bytes[i..];
    let after_prefix = if rest.starts_with(b"br") || rest.starts_with(b"rb") {
        2
    } else if rest.starts_with(b"r") || rest.starts_with(b"b") {
        1
    } else {
        return false;
    };
    // Identifier continuation means this `r`/`b` is part of a name.
    if i > 0 && (bytes[i - 1].is_ascii_alphanumeric() || bytes[i - 1] == b'_') {
        return false;
    }
    let mut j = after_prefix;
    while j < rest.len() && rest[j] == b'#' {
        j += 1;
    }
    j < rest.len() && rest[j] == b'"'
}

/// Scans a plain `"…"` string starting at the quote; records the literal
/// and blanks its body. Returns the index one past the closing quote.
fn scan_string(
    src: &str,
    start: usize,
    line: usize,
    strings: &mut Vec<StrLit>,
    mut blank: impl FnMut(u8),
) -> usize {
    let bytes = src.as_bytes();
    let mut j = start + 1;
    while j < bytes.len() {
        match bytes[j] {
            b'\\' => j = (j + 2).min(bytes.len()),
            b'"' => {
                j += 1;
                break;
            }
            _ => j += 1,
        }
    }
    strings.push(StrLit {
        line,
        start,
        content: src[start + 1..j.saturating_sub(1).max(start + 1)].to_string(),
    });
    for &cb in &bytes[start..j] {
        blank(cb);
    }
    j
}

/// Scans either a raw string (`#…#"…"#…#`) or, if no hashes, a plain
/// string, starting at the first `#` or the quote.
fn scan_raw_or_plain(
    src: &str,
    at: usize,
    line: usize,
    strings: &mut Vec<StrLit>,
    mut blank: impl FnMut(u8),
) -> usize {
    let bytes = src.as_bytes();
    let mut hashes = 0usize;
    let mut j = at;
    while j < bytes.len() && bytes[j] == b'#' {
        hashes += 1;
        j += 1;
    }
    if hashes == 0 {
        return scan_string(src, at, line, strings, blank);
    }
    debug_assert_eq!(bytes[j], b'"');
    let body_start = j + 1;
    let closer: String = format!("\"{}", "#".repeat(hashes));
    let end = src[body_start..]
        .find(&closer)
        .map(|p| body_start + p)
        .unwrap_or(src.len());
    let stop = (end + closer.len()).min(src.len());
    strings.push(StrLit {
        line,
        start: at,
        content: src[body_start..end].to_string(),
    });
    for &cb in &bytes[at..stop] {
        blank(cb);
    }
    stop
}

/// End index (exclusive) of a char literal at `i`, or `None` if `'` is a
/// lifetime.
fn char_literal_end(bytes: &[u8], i: usize) -> Option<usize> {
    let next = *bytes.get(i + 1)?;
    if next == b'\\' {
        // Escape: scan to the closing quote.
        let mut j = i + 2;
        while j < bytes.len() {
            match bytes[j] {
                b'\\' => j += 2,
                b'\'' => return Some(j + 1),
                b'\n' => return None,
                _ => j += 1,
            }
        }
        return None;
    }
    // 'x' (any single byte or UTF-8 char) followed by a quote.
    let mut j = i + 1;
    // Advance one UTF-8 character.
    j += 1;
    while j < bytes.len() && (bytes[j] & 0b1100_0000) == 0b1000_0000 {
        j += 1;
    }
    if bytes.get(j) == Some(&b'\'') {
        Some(j + 1)
    } else {
        None
    }
}

/// Marks every line inside a `#[cfg(test)]` item's brace block.
fn mark_test_regions(masked: &str, line_starts: &[usize], n_lines: usize) -> Vec<bool> {
    let mut is_test = vec![false; n_lines];
    let bytes = masked.as_bytes();
    let mut depth = 0usize;
    let mut line = 1usize;
    let mut pending_attr = false;
    // Depth at which each active test region's block opened.
    let mut region_stack: Vec<usize> = Vec::new();
    let mut i = 0usize;
    while i < bytes.len() {
        if masked[i..].starts_with("#[cfg(test)]") {
            pending_attr = true;
            i += "#[cfg(test)]".len();
            continue;
        }
        match bytes[i] {
            b'{' => {
                depth += 1;
                if pending_attr {
                    region_stack.push(depth);
                    pending_attr = false;
                }
            }
            b'}' => {
                if region_stack.last() == Some(&depth) {
                    region_stack.pop();
                }
                depth = depth.saturating_sub(1);
            }
            b'\n' => {
                line += 1;
            }
            _ => {}
        }
        if !region_stack.is_empty() && line <= n_lines {
            is_test[line - 1] = true;
        }
        i += 1;
    }
    // The attribute lines themselves (and the `mod tests {` opener) are
    // conservatively marked test only from the opening brace onward; the
    // attribute line itself stays non-test, which is the strict choice.
    let _ = line_starts;
    is_test
}
