//! Static lock-order graph (rule R4a).
//!
//! Scans non-test code for lock acquisitions — the sanctioned
//! `lock_or_recover` / `read_or_recover` / `write_or_recover` helpers
//! plus raw `.lock(` / `.read(` / `.write(` receiver calls with empty
//! argument lists — and tracks which acquisitions happen while another
//! guard is still in scope. Each such pair is a directed edge
//! `held → acquired`; a cycle in the edge set means two code paths can
//! take the same two locks in opposite orders, i.e. a potential
//! deadlock, and the lint fails.
//!
//! Guard scope is approximated the way the borrow checker sees it for
//! `let`-bound guards: alive from the binding until the enclosing brace
//! closes or an explicit `drop(ident)`. Un-bound (temporary) guards die
//! at end of statement and only pair with acquisitions on the same
//! statement. This over-approximates neither often nor dangerously: the
//! repo's style is `let guard = lock_or_recover(..)`.
//!
//! Lock identity is `file-stem.field`: the last field identifier of the
//! receiver/argument (`self.inner.write()` in catalog.rs → `catalog.inner`).
//! Two locks with the same field name in different files are distinct
//! nodes, which keeps the graph honest without whole-program alias
//! analysis.

use crate::lexer::LexedFile;
use std::collections::{BTreeMap, BTreeSet};

/// One acquisition site found in the scan.
#[derive(Debug, Clone)]
pub struct LockSite {
    pub path: String,
    pub line: usize,
    /// Canonical lock name (`file-stem.field`).
    pub lock: String,
}

/// A held→acquired ordering edge with one witness site.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct LockEdge {
    pub held: String,
    pub acquired: String,
    pub path: String,
    pub line: usize,
}

#[derive(Debug, Default)]
pub struct LockGraph {
    pub sites: Vec<LockSite>,
    pub edges: Vec<LockEdge>,
}

impl LockGraph {
    /// Distinct lock names seen.
    pub fn locks(&self) -> BTreeSet<&str> {
        self.sites.iter().map(|s| s.lock.as_str()).collect()
    }

    /// Cycles in the ordering graph, each as the list of lock names on
    /// the cycle. Empty means the acquisition order is consistent.
    pub fn cycles(&self) -> Vec<Vec<String>> {
        let mut adj: BTreeMap<&str, BTreeSet<&str>> = BTreeMap::new();
        for e in &self.edges {
            adj.entry(&e.held).or_default().insert(&e.acquired);
        }
        let mut cycles = Vec::new();
        let mut done: BTreeSet<&str> = BTreeSet::new();
        for &start in adj.keys() {
            if done.contains(start) {
                continue;
            }
            // Iterative DFS with an explicit path stack for cycle recovery.
            let mut stack: Vec<(&str, Vec<&str>)> = vec![(start, vec![start])];
            while let Some((node, path)) = stack.pop() {
                if let Some(nexts) = adj.get(node) {
                    for &next in nexts {
                        if let Some(pos) = path.iter().position(|&p| p == next) {
                            let mut cyc: Vec<String> =
                                path[pos..].iter().map(|s| s.to_string()).collect();
                            cyc.push(next.to_string());
                            if !cycles.contains(&cyc) {
                                cycles.push(cyc);
                            }
                        } else if path.len() < 32 {
                            let mut p = path.clone();
                            p.push(next);
                            stack.push((next, p));
                        }
                    }
                }
            }
            done.insert(start);
        }
        cycles
    }
}

/// A live guard binding.
struct Guard {
    name: String,
    lock: String,
    /// Brace depth at the binding; dies when depth drops below this.
    depth: usize,
}

/// Scans one lexed file, appending its acquisition sites and edges.
pub fn scan_file(lx: &LexedFile, graph: &mut LockGraph) {
    let stem = file_stem(&lx.path);
    let mut depth: usize = 0;
    let mut guards: Vec<Guard> = Vec::new();

    let n_lines = lx.line_starts.len();
    for line_no in 1..=n_lines {
        let text = lx.masked_line(line_no);
        if lx.test_line(line_no) {
            // Still track braces so depth stays consistent across
            // test regions embedded in lib files.
            for b in text.bytes() {
                match b {
                    b'{' => depth += 1,
                    b'}' => {
                        depth = depth.saturating_sub(1);
                        guards.retain(|g| g.depth <= depth);
                    }
                    _ => {}
                }
            }
            continue;
        }

        // Explicit drops end a guard's life early.
        for name in drop_targets(text) {
            guards.retain(|g| g.name != name);
        }

        // Acquisitions on this line, in textual order.
        let acqs = acquisitions_on(text, &stem);
        let bound = let_binding(text);
        for (idx, lock) in acqs.iter().enumerate() {
            graph.sites.push(LockSite {
                path: lx.path.clone(),
                line: line_no,
                lock: lock.clone(),
            });
            for held in &guards {
                if held.lock != *lock {
                    graph.edges.push(LockEdge {
                        held: held.lock.clone(),
                        acquired: lock.clone(),
                        path: lx.path.clone(),
                        line: line_no,
                    });
                }
            }
            // Same-statement second acquisition pairs with the first.
            if idx > 0 && acqs[0] != *lock {
                graph.edges.push(LockEdge {
                    held: acqs[0].clone(),
                    acquired: lock.clone(),
                    path: lx.path.clone(),
                    line: line_no,
                });
            }
        }

        // Walk braces *after* recording acquisitions at the current
        // depth, then register any let-bound guard at the new depth of
        // its binding statement (same line: binding depth = depth before
        // trailing closers; good enough for rustfmt-formatted code).
        let mut line_depth = depth;
        for b in text.bytes() {
            match b {
                b'{' => line_depth += 1,
                b'}' => {
                    line_depth = line_depth.saturating_sub(1);
                }
                _ => {}
            }
        }
        if let (Some(name), false) = (bound, acqs.is_empty()) {
            guards.push(Guard {
                name,
                lock: acqs[0].clone(),
                depth,
            });
        }
        depth = line_depth;
        guards.retain(|g| g.depth <= depth);
    }
}

fn file_stem(path: &str) -> String {
    path.rsplit('/')
        .next()
        .unwrap_or(path)
        .trim_end_matches(".rs")
        .to_string()
}

/// `let <mut>? IDENT = …` → IDENT.
fn let_binding(text: &str) -> Option<String> {
    let t = text.trim_start();
    let rest = t.strip_prefix("let ")?;
    let rest = rest.strip_prefix("mut ").unwrap_or(rest);
    let ident: String = rest
        .chars()
        .take_while(|c| c.is_ascii_alphanumeric() || *c == '_')
        .collect();
    if ident.is_empty() || ident == "_" {
        None
    } else {
        Some(ident)
    }
}

/// Identifiers passed to `drop(...)` on this line.
fn drop_targets(text: &str) -> Vec<String> {
    let mut out = Vec::new();
    let bytes = text.as_bytes();
    let mut from = 0usize;
    while let Some(p) = text[from..].find("drop(") {
        let at = from + p;
        from = at + 5;
        // Word boundary on the left.
        if at > 0 && (bytes[at - 1].is_ascii_alphanumeric() || bytes[at - 1] == b'_') {
            continue;
        }
        let arg: String = text[from..]
            .chars()
            .take_while(|c| c.is_ascii_alphanumeric() || *c == '_')
            .collect();
        if !arg.is_empty() && text[from + arg.len()..].starts_with(')') {
            out.push(arg);
        }
    }
    out
}

/// Canonical lock names acquired on this masked line, in order.
fn acquisitions_on(text: &str, stem: &str) -> Vec<String> {
    let mut out = Vec::new();
    // Helper calls: name is the last field of the `&…` argument.
    for helper in ["lock_or_recover(", "read_or_recover(", "write_or_recover("] {
        let mut from = 0usize;
        while let Some(p) = text[from..].find(helper) {
            let at = from + p + helper.len();
            from = at;
            if let Some(name) = last_field_of_arg(&text[at..]) {
                out.push(format!("{stem}.{name}"));
            }
        }
    }
    // Raw receiver calls with empty parens: `recv.lock()`, `recv.read()`,
    // `recv.write()` — the method-style acquisitions R4b also polices.
    for method in [".lock()", ".read()", ".write()"] {
        let mut from = 0usize;
        while let Some(p) = text[from..].find(method) {
            let at = from + p;
            from = at + method.len();
            if let Some(name) = last_field_before(text, at) {
                out.push(format!("{stem}.{name}"));
            }
        }
    }
    out
}

/// For `&self.cache.inner)` (a helper argument) → `inner`.
fn last_field_of_arg(rest: &str) -> Option<String> {
    let end = rest.find([')', ','])?;
    let arg = rest[..end].trim().trim_start_matches('&');
    let last = arg.rsplit('.').next()?.trim();
    let ident: String = last
        .chars()
        .take_while(|c| c.is_ascii_alphanumeric() || *c == '_')
        .collect();
    if ident.is_empty() {
        None
    } else {
        Some(ident)
    }
}

/// For `self.state.lock()` with `at` pointing at `.lock()` → `state`.
fn last_field_before(text: &str, at: usize) -> Option<String> {
    let head = &text[..at];
    let ident_rev: String = head
        .chars()
        .rev()
        .take_while(|c| c.is_ascii_alphanumeric() || *c == '_')
        .collect();
    if ident_rev.is_empty() {
        return None;
    }
    Some(ident_rev.chars().rev().collect())
}
